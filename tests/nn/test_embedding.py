"""Embedding layer and text classifier."""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import Embedding, Tensor
from repro.nn.embedding import embedding
from repro.nn.models import TextClassifier, text_classifier


class TestEmbeddingFunction:
    def test_lookup_values(self):
        weight = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = embedding(np.array([1, 3]), weight)
        assert np.array_equal(out.data, weight.data[[1, 3]])

    def test_preserves_index_shape(self):
        weight = Tensor(np.zeros((10, 5), dtype=np.float32))
        out = embedding(np.zeros((2, 7), dtype=np.int64), weight)
        assert out.shape == (2, 7, 5)

    def test_gradient_scatter_adds_repeats(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        out = embedding(np.array([1, 1, 2]), weight)
        out.sum().backward()
        assert np.allclose(weight.grad[1], [2, 2])  # used twice
        assert np.allclose(weight.grad[2], [1, 1])
        assert np.allclose(weight.grad[0], [0, 0])

    def test_out_of_range_ids_rejected(self):
        weight = Tensor(np.zeros((4, 2), dtype=np.float32))
        with pytest.raises(IndexError):
            embedding(np.array([4]), weight)
        with pytest.raises(IndexError):
            embedding(np.array([-1]), weight)

    def test_accepts_tensor_indices(self):
        weight = Tensor(np.ones((3, 2), dtype=np.float32))
        ids = Tensor(np.array([0, 2]), dtype=np.int64)
        assert embedding(ids, weight).shape == (2, 2)


class TestEmbeddingModule:
    def test_parameter_registration(self):
        layer = Embedding(100, 16)
        assert layer.num_parameters() == 1600
        assert "weight" in dict(layer.named_parameters())

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)

    def test_seeded_initialization(self):
        nn.manual_seed(3)
        a = Embedding(10, 4).weight.data.copy()
        nn.manual_seed(3)
        b = Embedding(10, 4).weight.data.copy()
        assert np.array_equal(a, b)


class TestTextClassifier:
    def test_forward_shape(self):
        model = text_classifier(vocab_size=500, embedding_dim=16, hidden_dim=8, num_classes=4)
        model.eval()
        tokens = np.random.default_rng(0).integers(0, 500, size=(3, 12))
        assert model(tokens).shape == (3, 4)

    def test_embedding_dominates_parameters(self):
        """The §4.7 NLP shape: the embedding table is most of the model."""
        model = text_classifier(vocab_size=50_000, embedding_dim=64)
        embedding_params = model.embedding.num_parameters()
        assert embedding_params > 0.9 * model.num_parameters()

    def test_trains_to_lower_loss(self):
        nn.manual_seed(0)
        model = text_classifier(vocab_size=64, embedding_dim=8, hidden_dim=8, num_classes=2)
        model.train()
        optimizer = nn.SGD(list(model.parameters()), lr=0.5)
        generator = np.random.default_rng(1)
        labels = generator.integers(0, 2, size=16)
        tokens = (labels.reshape(-1, 1) * 32 + generator.integers(0, 32, size=(16, 6)))
        first = None
        for _ in range(40):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(tokens), labels)
            first = first or loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.5

    def test_final_classifier_for_partial_updates(self):
        model = text_classifier(vocab_size=100, embedding_dim=8, num_classes=3)
        head = model.final_classifier()
        assert head.out_features == 3

    def test_reproducible_training_probe(self):
        from repro.core import probe_reproducibility

        nn.manual_seed(0)
        model = text_classifier(vocab_size=64, embedding_dim=8, hidden_dim=8, num_classes=2)
        tokens = Tensor(np.random.default_rng(2).integers(0, 64, size=(2, 6)), dtype=np.int64)
        labels = np.array([0, 1], dtype=np.int64)
        assert probe_reproducibility(model, tokens, labels, training=True).reproducible
