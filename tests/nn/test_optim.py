"""Optimizers: update rules, frozen parameters, state round-trips."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Parameter
from repro.nn.optim import SGD, Adam


def make_param(value=1.0, size=3):
    return Parameter(np.full(size, value, dtype=np.float32))


class TestSGD:
    def test_plain_step(self):
        p = make_param(1.0)
        p.grad = np.full(3, 0.5, dtype=np.float32)
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, 0.95)

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        optimizer = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        assert np.allclose(p.data, -1.0)
        p.grad = np.ones(3, dtype=np.float32)
        optimizer.step()  # buffer = 0.9*1 + 1 = 1.9
        assert np.allclose(p.data, -2.9)

    def test_weight_decay_shrinks_weights(self):
        p = make_param(10.0)
        p.grad = np.zeros(3, dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert np.allclose(p.data, 10.0 - 0.1 * 1.0)

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = make_param(0.0), make_param(0.0)
        o1 = SGD([p1], lr=1.0, momentum=0.9, nesterov=True)
        o2 = SGD([p2], lr=1.0, momentum=0.9)
        for optimizer, p in ((o1, p1), (o2, p2)):
            for _ in range(2):
                p.grad = np.ones(3, dtype=np.float32)
                optimizer.step()
        assert not np.allclose(p1.data, p2.data)

    def test_skips_frozen_and_gradless_params(self):
        frozen = make_param(5.0)
        frozen.requires_grad = False
        frozen.grad = np.ones(3, dtype=np.float32)
        gradless = make_param(7.0)
        SGD([frozen, gradless], lr=1.0).step()
        assert np.allclose(frozen.data, 5.0)
        assert np.allclose(gradless.data, 7.0)

    def test_zero_grad(self):
        p = make_param()
        p.grad = np.ones(3, dtype=np.float32)
        optimizer = SGD([p], lr=0.1)
        optimizer.zero_grad()
        assert p.grad is None

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_dict_round_trip_reproduces_trajectory(self):
        p = make_param(0.0)
        optimizer = SGD([p], lr=0.5, momentum=0.9)
        p.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        snapshot = optimizer.state_dict()
        p_snapshot = p.data.copy()

        p.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        expected = p.data.copy()

        # restore and replay the second step
        p.data = p_snapshot
        fresh = SGD([p], lr=0.1)  # different hyper-params, overwritten by load
        fresh.load_state_dict(snapshot)
        assert fresh.lr == 0.5 and fresh.momentum == 0.9
        p.grad = np.ones(3, dtype=np.float32)
        fresh.step()
        assert np.allclose(p.data, expected)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        p = make_param(0.0)
        p.grad = np.full(3, 0.1, dtype=np.float32)
        Adam([p], lr=0.01).step()
        # with bias correction the first step is ~lr in the grad direction
        assert np.allclose(p.data, -0.01, atol=1e-4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        optimizer = Adam([p], lr=0.5)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dp p^2
            optimizer.step()
        assert abs(p.data[0]) < 0.1

    def test_weight_decay_applied(self):
        p1, p2 = make_param(5.0), make_param(5.0)
        for p, wd in ((p1, 0.0), (p2, 0.5)):
            optimizer = Adam([p], lr=0.1, weight_decay=wd)
            p.grad = np.zeros(3, dtype=np.float32)
            optimizer.step()
        assert np.allclose(p1.data, 5.0)
        assert not np.allclose(p2.data, 5.0)

    def test_state_dict_round_trip(self):
        p = make_param(1.0)
        optimizer = Adam([p], lr=0.01)
        p.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        state = optimizer.state_dict()
        restored = Adam([p], lr=0.999)
        restored.load_state_dict(state)
        entry = restored.state[id(p)]
        assert entry["step"] == 1
        assert np.allclose(entry["exp_avg"], 0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([make_param()], lr=0.0)


class TestTrainingIntegration:
    def test_sgd_reduces_loss_on_tiny_problem(self):
        nn.manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        optimizer = SGD(list(model.parameters()), lr=0.1, momentum=0.9)
        x = nn.randn(16, 4)
        y = np.array([0, 1] * 8)
        import repro.nn.functional as F

        first_loss = None
        for _ in range(30):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(x), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.5
