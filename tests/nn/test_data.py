"""Datasets and the DataLoader."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from repro.nn.data import DataLoader, Subset, TensorDataset


class TestTensorDataset:
    def test_pairs(self):
        ds = TensorDataset(np.arange(4), np.arange(4) * 10)
        assert len(ds) == 4
        assert ds[2] == (2, 20)

    def test_single_array_unwraps(self):
        ds = TensorDataset(np.arange(3))
        assert ds[1] == 1

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            TensorDataset(np.arange(3), np.arange(4))

    def test_empty_args_raise(self):
        with pytest.raises(ValueError):
            TensorDataset()


class TestSubset:
    def test_indices_remap(self):
        ds = Subset(TensorDataset(np.arange(10)), [7, 3])
        assert len(ds) == 2
        assert ds[0] == 7 and ds[1] == 3


class TestDataLoader:
    def _dataset(self, n=10):
        images = np.random.default_rng(0).normal(size=(n, 3, 4, 4)).astype(np.float32)
        labels = np.arange(n, dtype=np.int64)
        return TensorDataset(images, labels)

    def test_batch_shapes_and_types(self):
        loader = DataLoader(self._dataset(), batch_size=4)
        images, labels = next(iter(loader))
        assert isinstance(images, Tensor) and isinstance(labels, Tensor)
        assert images.shape == (4, 3, 4, 4)
        assert labels.dtype == np.int64

    def test_len_with_and_without_drop_last(self):
        ds = self._dataset(10)
        assert len(DataLoader(ds, batch_size=4)) == 3
        assert len(DataLoader(ds, batch_size=4, drop_last=True)) == 2

    def test_drop_last_skips_partial_batch(self):
        loader = DataLoader(self._dataset(10), batch_size=4, drop_last=True)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [4, 4]

    def test_unshuffled_order_is_sequential(self):
        loader = DataLoader(self._dataset(6), batch_size=3)
        labels = np.concatenate([l.data for _, l in loader])
        assert labels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_shuffle_is_seed_reproducible(self):
        ds = self._dataset(20)
        nn.manual_seed(5)
        first = np.concatenate([l.data for _, l in DataLoader(ds, 4, shuffle=True)])
        nn.manual_seed(5)
        second = np.concatenate([l.data for _, l in DataLoader(ds, 4, shuffle=True)])
        assert np.array_equal(first, second)
        nn.manual_seed(6)
        third = np.concatenate([l.data for _, l in DataLoader(ds, 4, shuffle=True)])
        assert not np.array_equal(first, third)

    def test_shuffle_covers_every_item(self):
        nn.manual_seed(0)
        loader = DataLoader(self._dataset(10), batch_size=3, shuffle=True)
        labels = sorted(np.concatenate([l.data for _, l in loader]).tolist())
        assert labels == list(range(10))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)

    def test_custom_collate(self):
        loader = DataLoader(
            TensorDataset(np.arange(4)), batch_size=2, collate_fn=lambda items: sum(items)
        )
        assert list(loader) == [1, 5]
