"""Model zoo: Table 2 parameter counts, forward shapes, partial freezing."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.models import (
    MODEL_REGISTRY,
    create_model,
    freeze_for_partial_update,
    list_models,
    trainable_parameter_count,
)

FAST_SCALE = 0.25


class TestTable2:
    """Exact reproduction of the paper's Table 2 at scale=1.0."""

    @pytest.mark.parametrize("name", list_models())
    def test_parameter_counts_match_paper(self, name):
        model = create_model(name, seed=0)
        assert model.num_parameters() == MODEL_REGISTRY[name].paper_params

    @pytest.mark.parametrize("name", list_models())
    def test_partial_update_counts_match_paper(self, name):
        model = create_model(name, seed=0)
        freeze_for_partial_update(model)
        assert (
            trainable_parameter_count(model)
            == MODEL_REGISTRY[name].paper_partial_params
        )

    @pytest.mark.parametrize("name", list_models())
    def test_state_dict_size_close_to_paper_mb(self, name):
        model = create_model(name, seed=0)
        size_mb = sum(v.nbytes for v in model.state_dict().values()) / 1e6
        assert size_mb == pytest.approx(MODEL_REGISTRY[name].paper_size_mb, rel=0.02)


class TestForward:
    @pytest.mark.parametrize("name", list_models())
    def test_forward_shape_eval(self, name):
        model = create_model(name, num_classes=10, scale=FAST_SCALE, seed=1)
        model.eval()
        out = model(nn.randn(2, 3, 32, 32))
        assert out.shape == (2, 10)

    @pytest.mark.parametrize("name", list_models())
    def test_backward_reaches_all_parameters(self, name):
        import repro.nn.functional as F

        model = create_model(name, num_classes=10, scale=FAST_SCALE, seed=1)
        model.train()
        out = model(nn.randn(2, 3, 32, 32))
        logits = out[0] if isinstance(out, tuple) else out
        F.cross_entropy(logits, np.array([0, 1])).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing[:5]}"

    def test_googlenet_train_mode_with_aux_returns_triple(self):
        from repro.nn.models import googlenet

        model = googlenet(num_classes=10, scale=FAST_SCALE, aux_logits=True)
        model.train()
        out = model(nn.randn(2, 3, 32, 32))
        assert isinstance(out, tuple) and len(out) == 3
        model.eval()
        assert not isinstance(model(nn.randn(2, 3, 32, 32)), tuple)


class TestReproducibleConstruction:
    @pytest.mark.parametrize("name", list_models())
    def test_same_seed_same_weights(self, name):
        a = create_model(name, num_classes=10, scale=FAST_SCALE, seed=7).state_dict()
        b = create_model(name, num_classes=10, scale=FAST_SCALE, seed=7).state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_different_seed_different_weights(self):
        a = create_model("resnet18", num_classes=10, scale=FAST_SCALE, seed=1).state_dict()
        b = create_model("resnet18", num_classes=10, scale=FAST_SCALE, seed=2).state_dict()
        assert any(not np.array_equal(a[k], b[k]) for k in a)


class TestScaling:
    @pytest.mark.parametrize("name", list_models())
    def test_scale_reduces_parameters(self, name):
        full = create_model(name, num_classes=10, seed=0).num_parameters()
        small = create_model(name, num_classes=10, scale=FAST_SCALE, seed=0).num_parameters()
        assert small < full

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("alexnet")


class TestPartialFreeze:
    @pytest.mark.parametrize("name", list_models())
    def test_only_classifier_trainable(self, name):
        model = create_model(name, num_classes=10, scale=FAST_SCALE, seed=0)
        freeze_for_partial_update(model)
        classifier = model.final_classifier()
        classifier_params = {id(p) for p in classifier.parameters()}
        for parameter in model.parameters():
            assert parameter.requires_grad == (id(parameter) in classifier_params)


class TestLegacyKernelAssignment:
    def test_resnet18_uses_legacy_convs_in_blocks(self):
        from repro.nn.models.resnet import BasicBlock

        model = create_model("resnet18", num_classes=10, scale=FAST_SCALE, seed=0)
        legacy = [
            m for _, m in model.named_modules()
            if isinstance(m, nn.Conv2d) and m.kernel_impl == "legacy"
        ]
        assert legacy, "ResNet-18 should carry legacy-kernel convolutions"

    def test_resnet50_has_no_legacy_convs(self):
        model = create_model("resnet50", num_classes=10, scale=FAST_SCALE, seed=0)
        legacy = [
            m for _, m in model.named_modules()
            if isinstance(m, nn.Conv2d) and m.kernel_impl == "legacy"
        ]
        assert not legacy
