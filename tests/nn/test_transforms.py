"""Data augmentation transforms."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.transforms import (
    CenterCrop,
    Compose,
    Normalize,
    RandomCrop,
    RandomErasing,
    RandomHorizontalFlip,
    TransformedDataset,
)


def image(c=3, h=8, w=8, seed=0):
    return np.random.default_rng(seed).random((c, h, w)).astype(np.float32)


class TestNormalize:
    def test_standardizes_channels(self):
        x = image()
        out = Normalize(mean=x.mean(axis=(1, 2)), std=x.std(axis=(1, 2)))(x)
        assert np.allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=(1, 2)), 1.0, atol=1e-4)

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])


class TestRandomHorizontalFlip:
    def test_p_one_always_flips(self):
        x = image()
        out = RandomHorizontalFlip(p=1.0)(x)
        assert np.array_equal(out, x[:, :, ::-1])

    def test_p_zero_never_flips(self):
        x = image()
        assert np.array_equal(RandomHorizontalFlip(p=0.0)(x), x)

    def test_seeded_reproducibility(self):
        x = image()
        flip = RandomHorizontalFlip(p=0.5)
        nn.manual_seed(4)
        a = [flip(x).copy() for _ in range(8)]
        nn.manual_seed(4)
        b = [flip(x).copy() for _ in range(8)]
        assert all(np.array_equal(i, j) for i, j in zip(a, b))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)


class TestCrops:
    def test_random_crop_shape(self):
        out = RandomCrop(size=6)(image())
        assert out.shape == (3, 6, 6)

    def test_random_crop_with_padding_allows_same_size(self):
        out = RandomCrop(size=8, padding=2)(image())
        assert out.shape == (3, 8, 8)

    def test_random_crop_too_small_raises(self):
        with pytest.raises(ValueError):
            RandomCrop(size=10)(image())

    def test_center_crop_is_deterministic_and_central(self):
        x = np.zeros((1, 5, 5), dtype=np.float32)
        x[0, 2, 2] = 1.0
        out = CenterCrop(size=3)(x)
        assert out.shape == (1, 3, 3)
        assert out[0, 1, 1] == 1.0

    def test_random_crop_seeded(self):
        x = image(h=16, w=16)
        crop = RandomCrop(size=8)
        nn.manual_seed(9)
        a = crop(x)
        nn.manual_seed(9)
        b = crop(x)
        assert np.array_equal(a, b)


class TestRandomErasing:
    def test_erases_some_pixels(self):
        nn.manual_seed(0)
        x = np.ones((3, 16, 16), dtype=np.float32)
        out = RandomErasing(p=1.0, max_fraction=0.5)(x)
        assert (out == 0).any()
        assert out.shape == x.shape

    def test_p_zero_identity(self):
        x = image()
        assert np.array_equal(RandomErasing(p=0.0)(x), x)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RandomErasing(max_fraction=0.0)


class TestComposeAndDataset:
    def test_compose_applies_in_order(self):
        x = image(h=16, w=16)
        pipeline = Compose([RandomCrop(size=8), CenterCrop(size=4)])
        nn.manual_seed(1)
        assert pipeline(x).shape == (3, 4, 4)

    def test_transformed_dataset_wraps_pairs(self):
        from repro.nn.data import TensorDataset

        images = np.stack([image(seed=i) for i in range(4)])
        labels = np.arange(4)
        ds = TransformedDataset(TensorDataset(images, labels), CenterCrop(size=4))
        out_image, out_label = ds[2]
        assert out_image.shape == (3, 4, 4)
        assert out_label == 2
        assert len(ds) == 4

    def test_repr_is_informative(self):
        text = repr(Compose([RandomHorizontalFlip(), Normalize([0.5], [0.5])]))
        assert "RandomHorizontalFlip" in text and "Normalize" in text
