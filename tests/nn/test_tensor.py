"""Tensor arithmetic and autograd correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.nn as nn
from repro.nn import Tensor


def numeric_grad(fn, tensor, eps=1e-3):
    """Central-difference gradient of scalar-valued fn wrt tensor data."""
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    it = np.nditer(tensor.data, flags=["multi_index"])
    for _ in it:
        index = it.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        upper = fn()
        tensor.data[index] = original - eps
        lower = fn()
        tensor.data[index] = original
        grad[index] = (upper - lower) / (2 * eps)
    return grad


class TestBasics:
    def test_construction_defaults_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_construction_from_tensor_shares_nothing_unexpected(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_item_and_numel(self):
        t = Tensor([[5.0]])
        assert t.item() == 5.0
        assert t.numel() == 1

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        assert not b.requires_grad_through()
        with pytest.raises(RuntimeError):
            b.backward(np.ones(1))

    def test_clone_is_differentiable(self):
        a = Tensor([2.0], requires_grad=True)
        a.clone().sum().backward()
        assert a.grad is not None

    def test_backward_requires_scalar_or_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_sub_and_rsub(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (5.0 - a).sum().backward()
        assert np.allclose(a.grad, [-1, -1])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4, 5])
        assert np.allclose(b.grad, [2, 3])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [1 / 3])
        assert np.allclose(b.grad, [-6 / 9])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_neg_backward(self):
        a = Tensor([1.0], requires_grad=True)
        (-a).backward()
        assert np.allclose(a.grad, [-1.0])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2, 2, 2])

    def test_broadcast_mul_keepdim_axis(self):
        a = Tensor(np.ones((2, 1, 4)), requires_grad=True)
        b = Tensor(np.full((2, 3, 4), 2.0))
        (a * b).sum().backward()
        assert a.grad.shape == (2, 1, 4)
        assert np.allclose(a.grad, 6.0)

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        (a * 3).backward()
        assert np.allclose(a.grad, [5.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward()
        assert np.allclose(a.grad, [7.0])


class TestMatmul:
    def test_matmul_forward_matches_numpy(self):
        a = nn.randn(3, 4)
        b = nn.randn(4, 5)
        assert np.allclose((a @ b).data, a.data @ b.data, atol=1e-5)

    def test_matmul_gradients_numeric(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3, 2)), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda: (a.data @ b.data).sum(), a)
        num_b = numeric_grad(lambda: (a.data @ b.data).sum(), b)
        assert np.allclose(a.grad, num_a, atol=1e-2)
        assert np.allclose(b.grad, num_b, atol=1e-2)

    def test_batched_matmul(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((2, 4, 5)))
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)


class TestUnaryOps:
    @pytest.mark.parametrize(
        "op,data,expected_grad",
        [
            ("exp", [0.0], [1.0]),
            ("log", [2.0], [0.5]),
            ("sqrt", [4.0], [0.25]),
            ("abs", [-3.0], [-1.0]),
        ],
    )
    def test_unary_gradients(self, op, data, expected_grad):
        a = Tensor(data, requires_grad=True)
        getattr(a, op)().backward()
        assert np.allclose(a.grad, expected_grad, atol=1e-5)

    def test_clamp_masks_gradient(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        a.clamp(0.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0, 1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaled(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full((2, 4), 1 / 8))

    def test_mean_over_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(a.grad, np.full((2, 3, 4), 1 / 12))

    def test_max_gradient_to_argmax(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [[0, 1, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([3.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])

    def test_argmax_returns_indices(self):
        a = Tensor([[1.0, 9.0], [8.0, 2.0]])
        assert a.argmax(axis=1).tolist() == [1, 0]


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.transpose(0, 1)
        assert out.shape == (3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_permute(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.permute(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_scatter_gradient(self):
        a = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0, 1, 1, 0, 0])

    def test_flatten_start_dim(self):
        a = Tensor(np.ones((2, 3, 4)))
        assert a.flatten(1).shape == (2, 12)

    def test_pad2d_and_gradient(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = a.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((1, 1, 2, 2)))


class TestCatStack:
    def test_cat_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = nn.cat([a, b], dim=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_new_dimension(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = nn.stack([a, b])
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(3))


class TestFactories:
    def test_zeros_ones_shapes(self):
        assert nn.zeros(2, 3).shape == (2, 3)
        assert nn.ones((4,)).shape == (4,)
        assert np.all(nn.ones(2).data == 1)

    def test_randn_uses_seeded_generator(self):
        nn.manual_seed(7)
        a = nn.randn(5)
        nn.manual_seed(7)
        b = nn.randn(5)
        assert np.array_equal(a.data, b.data)

    def test_arange(self):
        assert nn.arange(3).tolist() == [0, 1, 2]


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(
        np.float32,
        hnp.array_shapes(max_dims=3, max_side=4),
        elements=st.floats(-10, 10, width=32),
    )
)
def test_property_add_matches_numpy(array):
    t = Tensor(array)
    assert np.array_equal((t + t).data, array + array)


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(
        np.float32,
        hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
        elements=st.floats(-5, 5, width=32),
    )
)
def test_property_sum_gradient_is_ones(array):
    t = Tensor(array, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(array))
