"""The public gradcheck utility."""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import Tensor
from repro.nn.testing import GradcheckError, gradcheck, numeric_gradient


class TestNumericGradient:
    def test_quadratic(self):
        x = Tensor(np.array([1.0, -2.0], dtype=np.float32))
        grad = numeric_gradient(lambda: float((x.data**2).sum()), x)
        assert np.allclose(grad, [2.0, -4.0], atol=1e-2)

    def test_restores_data(self):
        x = Tensor(np.array([3.0], dtype=np.float32))
        numeric_gradient(lambda: float(x.data.sum()), x)
        assert x.data[0] == 3.0


class TestGradcheck:
    def test_passes_for_correct_ops(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)).astype(np.float32),
                   requires_grad=True)
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_passes_for_conv(self):
        nn.manual_seed(0)
        x = nn.randn(1, 2, 5, 5, requires_grad=True)
        w = nn.randn(3, 2, 3, 3, requires_grad=True)
        assert gradcheck(lambda x, w: F.conv2d(x, w, None, padding=1), [x, w])

    def test_passes_for_composed_activation(self):
        x = Tensor(np.linspace(-2, 2, 6, dtype=np.float32), requires_grad=True)
        assert gradcheck(lambda t: F.gelu(F.tanh(t)), [x])

    def test_detects_wrong_gradient(self):
        from repro.nn.autograd import GraphNode

        def buggy_double(x):
            # forward doubles, backward claims identity: wrong by 2x
            node = GraphNode(inputs=(x,), backward_fn=lambda g: (g,), name="buggy")
            return Tensor._from_op(x.data * 2.0, node)

        x = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        with pytest.raises(GradcheckError, match="input #0"):
            gradcheck(buggy_double, [x])

    def test_requires_tensor_output(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        with pytest.raises(TypeError):
            gradcheck(lambda t: float(t.data.sum()), [x])

    def test_skips_non_grad_inputs(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        constant = Tensor(np.full(3, 2.0, dtype=np.float32))
        assert gradcheck(lambda x, c: x * c, [a, constant])
