"""RNG management and determinism switches."""

import numpy as np
import pytest

from repro.nn import rng


class TestSeeding:
    def test_manual_seed_reproduces_stream(self):
        rng.manual_seed(11)
        a = rng.generator().random(5)
        rng.manual_seed(11)
        b = rng.generator().random(5)
        assert np.array_equal(a, b)

    def test_initial_seed_reports_last_seed(self):
        rng.manual_seed(123)
        assert rng.initial_seed() == 123

    def test_nondet_generator_ignores_seed(self):
        rng.manual_seed(0)
        a = rng.nondet_generator().random(8)
        rng.manual_seed(0)
        b = rng.nondet_generator().random(8)
        assert not np.array_equal(a, b)


class TestState:
    def test_get_set_rng_state_resumes_stream(self):
        rng.manual_seed(3)
        rng.generator().random(10)
        state = rng.get_rng_state()
        expected = rng.generator().random(4)
        rng.set_rng_state(state)
        assert np.array_equal(rng.generator().random(4), expected)

    def test_state_is_json_compatible(self):
        import json

        rng.manual_seed(1)
        encoded = json.dumps(rng.get_rng_state())
        rng.set_rng_state(json.loads(encoded))

    def test_fork_rng_restores(self):
        rng.manual_seed(9)
        before = rng.get_rng_state()
        with rng.fork_rng(seed=1):
            rng.generator().random(100)
        assert rng.get_rng_state() == before


class TestDeterministicMode:
    def test_toggle(self):
        rng.use_deterministic_algorithms(True)
        assert rng.deterministic_algorithms_enabled()
        rng.use_deterministic_algorithms(False)
        assert not rng.deterministic_algorithms_enabled()

    def test_context_manager_restores(self):
        rng.use_deterministic_algorithms(False)
        with rng.deterministic_mode(True):
            assert rng.deterministic_algorithms_enabled()
        assert not rng.deterministic_algorithms_enabled()

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            rng.set_deterministic_chunk_size(0)
        rng.set_deterministic_chunk_size(128)
        assert rng.deterministic_chunk_size() == 128
        rng.set_deterministic_chunk_size(rng.DEFAULT_DETERMINISTIC_CHUNK)
