"""Serialization: exact round trips and deterministic encoding."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import serialization
from tests.conftest import make_tiny_cnn


class TestRoundTrip:
    def test_state_dict_round_trip_is_bitwise(self):
        state = make_tiny_cnn().state_dict()
        restored = serialization.loads(serialization.dumps(state))
        assert list(restored) == list(state)
        for key in state:
            assert np.array_equal(restored[key], state[key])
            assert restored[key].dtype == state[key].dtype

    def test_nested_structures(self):
        payload = {
            "defaults": {"lr": 0.1, "nesterov": False, "betas": (0.9, 0.999)},
            "state": {"0": {"step": 3, "buf": np.ones((2, 2))}},
            "tags": ["a", "b", None],
        }
        restored = serialization.loads(serialization.dumps(payload))
        assert restored["defaults"]["lr"] == 0.1
        assert restored["defaults"]["betas"] == (0.9, 0.999)
        assert restored["state"]["0"]["step"] == 3
        assert np.array_equal(restored["state"]["0"]["buf"], np.ones((2, 2)))
        assert restored["tags"] == ["a", "b", None]

    def test_preserves_key_order(self):
        state = OrderedDict([("z", np.zeros(1)), ("a", np.ones(1))])
        restored = serialization.loads(serialization.dumps(state))
        assert list(restored) == ["z", "a"]

    def test_numpy_scalars(self):
        restored = serialization.loads(serialization.dumps({"n": np.int64(7)}))
        assert restored["n"] == 7
        assert restored["n"].dtype == np.int64

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.int64, np.uint8, np.bool_])
    def test_dtypes_preserved(self, dtype):
        array = np.ones((3, 2), dtype=dtype)
        restored = serialization.loads(serialization.dumps(array))
        assert restored.dtype == dtype

    def test_empty_and_zero_dim_arrays(self):
        for array in (np.zeros((0, 3)), np.float32(4.0) * np.ones(())):
            restored = serialization.loads(serialization.dumps(array))
            assert restored.shape == array.shape

    def test_non_contiguous_array(self):
        array = np.arange(12).reshape(3, 4)[:, ::2]
        restored = serialization.loads(serialization.dumps(array))
        assert np.array_equal(restored, array)


class TestDeterminism:
    def test_equal_inputs_equal_bytes(self):
        state = make_tiny_cnn(seed=3).state_dict()
        assert serialization.dumps(state) == serialization.dumps(state)

    def test_different_inputs_different_bytes(self):
        a = make_tiny_cnn(seed=1).state_dict()
        b = make_tiny_cnn(seed=2).state_dict()
        assert serialization.dumps(a) != serialization.dumps(b)


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            serialization.loads(b"not a payload at all")

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            serialization.dumps({"f": lambda: None})

    def test_truncated_header_length_rejected(self):
        data = serialization.dumps({"x": np.ones(4)})
        with pytest.raises(ValueError, match="truncated"):
            serialization.loads(data[:8])

    def test_truncated_header_rejected(self):
        data = serialization.dumps({"x": np.ones(4)})
        with pytest.raises(ValueError, match="truncated"):
            serialization.loads(data[:20])

    def test_truncated_payload_rejected(self):
        data = serialization.dumps({"x": np.ones(64)})
        with pytest.raises(ValueError, match="truncated"):
            serialization.loads(data[:-16])

    def test_corrupted_magic_file_rejected(self, tmp_path):
        path = tmp_path / "bad.state"
        serialization.save({"x": np.ones(4)}, path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="magic"):
            serialization.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "cut.state"
        serialization.save({"x": np.ones(64)}, path)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            serialization.load(path)


def _assert_trees_equal(original, restored):
    if isinstance(original, np.ndarray):
        assert isinstance(restored, np.ndarray)
        assert restored.dtype == original.dtype
        assert restored.shape == original.shape
        assert np.array_equal(restored, original)
    elif isinstance(original, dict):
        assert list(restored) == list(original)
        for key in original:
            _assert_trees_equal(original[key], restored[key])
    elif isinstance(original, (list, tuple)):
        assert type(restored) is type(original) and len(restored) == len(original)
        for a, b in zip(original, restored):
            _assert_trees_equal(a, b)
    else:
        assert restored == original


EDGE_TREE = OrderedDict(
    [
        ("empty", np.zeros((0, 3), dtype=np.float32)),
        ("zero_dim", np.array(2.5, dtype=np.float64)),
        ("view", np.arange(12, dtype=np.float32).reshape(3, 4)[:, ::2]),
        ("fortran", np.asfortranarray(np.arange(6, dtype=np.int32).reshape(2, 3))),
        ("nested", {"t": (np.ones(2), [np.int64(7), None]), "flag": True}),
    ]
)


class TestStreamingCodec:
    """The zero-copy writer/mmap reader must match the monolithic codec."""

    def test_iter_serialized_concatenates_to_dumps(self):
        chunks = list(serialization.iter_serialized(EDGE_TREE))
        assert b"".join(chunks) == serialization.dumps(EDGE_TREE)

    def test_dump_to_writes_identical_bytes(self, tmp_path):
        path = tmp_path / "stream.state"
        with open(path, "wb") as fileobj:
            written = serialization.dump_to(EDGE_TREE, fileobj)
        data = serialization.dumps(EDGE_TREE)
        assert path.read_bytes() == data
        assert written == len(data)

    def test_mmap_load_round_trips_edge_cases(self, tmp_path):
        path = tmp_path / "edge.state"
        serialization.save(EDGE_TREE, path)
        restored = serialization.load(path)
        assert restored["empty"].shape == (0, 3)
        assert restored["zero_dim"].shape == ()
        assert restored["zero_dim"] == 2.5
        assert np.array_equal(restored["view"], EDGE_TREE["view"])
        assert np.array_equal(restored["fortran"], EDGE_TREE["fortran"])
        assert restored["nested"]["t"][1] == [np.int64(7), None]
        assert restored["nested"]["flag"] is True

    def test_loads_accepts_memoryview(self):
        data = serialization.dumps(EDGE_TREE)
        restored = serialization.loads(memoryview(data))
        _assert_trees_equal(EDGE_TREE, restored)

    def test_loaded_arrays_are_writable_copies(self, tmp_path):
        path = tmp_path / "own.state"
        serialization.save({"w": np.ones(8, dtype=np.float32)}, path)
        restored = serialization.load(path)
        restored["w"][0] = 42.0  # must not be backed by the closed mmap
        assert restored["w"][0] == 42.0

    def test_streaming_does_not_copy_contiguous_arrays(self):
        array = np.arange(16, dtype=np.float32)
        _, views = serialization.serialized_views({"a": array})
        assert views[0].obj is array


class TestFiles:
    def test_save_load_file(self, tmp_path):
        path = tmp_path / "model.state"
        state = make_tiny_cnn().state_dict()
        written = serialization.save(state, path)
        assert path.stat().st_size == written
        restored = serialization.load(path)
        assert np.array_equal(restored["0.weight"], state["0.weight"])


@settings(max_examples=30, deadline=None)
@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(10**9), 10**9),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=10),
            hnp.arrays(
                np.float32,
                hnp.array_shapes(max_dims=2, max_side=4),
                elements=st.floats(-100, 100, width=32),
            ),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=5), children, max_size=3),
        ),
        max_leaves=8,
    )
)
def test_property_round_trip(tree):
    restored = serialization.loads(serialization.dumps(tree))

    def equal(a, b):
        if isinstance(a, np.ndarray):
            return isinstance(b, np.ndarray) and a.dtype == b.dtype and np.array_equal(a, b)
        if isinstance(a, dict):
            return set(a) == set(b) and all(equal(a[k], b[k]) for k in a)
        if isinstance(a, list):
            return len(a) == len(b) and all(equal(x, y) for x, y in zip(a, b))
        if isinstance(a, float):
            return a == pytest.approx(b, nan_ok=True)
        return a == b

    assert equal(tree, restored)
