"""Module system: registration, traversal, state dicts, hooks, freezing."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from tests.conftest import make_tiny_cnn


class TestRegistration:
    def test_parameters_registered_via_setattr(self):
        layer = nn.Linear(4, 2)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_child_modules_registered(self):
        model = make_tiny_cnn()
        assert len(list(model.children())) == 6

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            nn.Linear(2, 2).not_an_attribute

    def test_bias_false_registers_none(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert [name for name, _ in layer.named_parameters()] == ["weight"]

    def test_named_modules_dotted_paths(self):
        model = make_tiny_cnn()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "0" in names and "5" in names

    def test_buffers_in_named_buffers(self):
        model = make_tiny_cnn()
        buffer_names = [name for name, _ in model.named_buffers()]
        assert "1.running_mean" in buffer_names
        assert "1.num_batches_tracked" in buffer_names


class TestStateDict:
    def test_contains_parameters_and_buffers(self):
        state = make_tiny_cnn().state_dict()
        assert "0.weight" in state
        assert "1.running_var" in state
        assert "5.bias" in state

    def test_round_trip_exact(self):
        a = make_tiny_cnn(seed=1)
        b = make_tiny_cnn(seed=2)
        b.load_state_dict(a.state_dict())
        for key, value in a.state_dict().items():
            assert np.array_equal(value, b.state_dict()[key]), key

    def test_strict_load_rejects_missing_keys(self):
        model = make_tiny_cnn()
        state = model.state_dict()
        state.pop("5.bias")
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_strict_load_rejects_unexpected_keys(self):
        model = make_tiny_cnn()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_non_strict_load_ignores_extras(self):
        model = make_tiny_cnn()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = make_tiny_cnn()
        state = model.state_dict()
        state["5.bias"] = np.zeros(99, dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_load_copies_rather_than_aliases(self):
        model = make_tiny_cnn()
        state = model.state_dict()
        external = {k: v.copy() for k, v in state.items()}
        model.load_state_dict(external)
        external["5.bias"][...] = 123.0
        assert not np.any(model.state_dict()["5.bias"] == 123.0)


class TestModesAndFreezing:
    def test_train_eval_propagate(self):
        model = make_tiny_cnn()
        model.eval()
        assert all(not m.training for _, m in model.named_modules())
        model.train()
        assert all(m.training for _, m in model.named_modules())

    def test_freeze_marks_not_trainable(self):
        model = make_tiny_cnn()
        model.freeze()
        assert model.num_parameters(trainable_only=True) == 0
        assert model.num_parameters() > 0

    def test_zero_grad_clears(self):
        model = make_tiny_cnn()
        x = nn.randn(2, 3, 8, 8)
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_frozen_parameters_receive_no_grad(self):
        model = make_tiny_cnn()
        model.freeze()
        model[5].requires_grad_(True)
        model(nn.randn(2, 3, 8, 8)).sum().backward()
        grads = {name: p.grad is not None for name, p in model.named_parameters()}
        assert grads["5.weight"] and grads["5.bias"]
        assert not grads["0.weight"]


class TestHooks:
    def test_forward_hook_fires_and_removes(self):
        layer = nn.ReLU()
        seen = []
        handle = layer.register_forward_hook(lambda m, args, out: seen.append(out.shape))
        layer(nn.randn(2, 3))
        assert seen == [(2, 3)]
        handle.remove()
        layer(nn.randn(2, 3))
        assert len(seen) == 1


class TestContainers:
    def test_sequential_indexing_and_iteration(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)
        assert len(list(iter(model))) == 2

    def test_module_list(self):
        blocks = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(blocks) == 3
        names = [n for n, _ in blocks.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_identity_passthrough(self):
        x = nn.randn(3, 3)
        assert np.array_equal(nn.Identity()(x).data, x.data)

    def test_flatten_module(self):
        assert nn.Flatten()(nn.randn(2, 3, 4)).shape == (2, 12)


class TestLayers:
    def test_linear_shapes(self):
        layer = nn.Linear(8, 3)
        assert layer(nn.randn(5, 8)).shape == (5, 3)

    def test_conv2d_output_shape(self):
        layer = nn.Conv2d(3, 6, kernel_size=3, stride=2, padding=1)
        assert layer(nn.randn(2, 3, 8, 8)).shape == (2, 6, 4, 4)

    def test_batchnorm_tracks_batches(self):
        bn = nn.BatchNorm2d(4)
        bn(nn.randn(2, 4, 3, 3))
        bn(nn.randn(2, 4, 3, 3))
        assert int(bn._buffers["num_batches_tracked"]) == 2
        bn.eval()
        bn(nn.randn(2, 4, 3, 3))
        assert int(bn._buffers["num_batches_tracked"]) == 2

    def test_dropout_respects_training_flag(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = nn.randn(10, 10)
        assert np.array_equal(drop(x).data, x.data)

    def test_legacy_dropout_ignores_seed(self):
        drop = nn.LegacyDropout(0.5)
        x = Tensor(np.ones((64, 64), dtype=np.float32))
        nn.manual_seed(0)
        first = drop(x).data.copy()
        nn.manual_seed(0)
        second = drop(x).data.copy()
        assert not np.array_equal(first, second)

    def test_num_parameters_counts(self):
        layer = nn.Linear(10, 5)
        assert layer.num_parameters() == 55

    def test_repr_is_informative(self):
        text = repr(make_tiny_cnn())
        assert "Conv2d" in text and "Linear" in text
