"""Weight initializers."""

import math

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor, init


class TestFanCalculation:
    def test_linear_fans(self):
        weight = Tensor(np.zeros((8, 4)))
        assert init.calculate_fan(weight) == (4, 8)

    def test_conv_fans_include_receptive_field(self):
        weight = Tensor(np.zeros((16, 3, 5, 5)))
        assert init.calculate_fan(weight) == (3 * 25, 16 * 25)

    def test_1d_tensor_rejected(self):
        with pytest.raises(ValueError):
            init.calculate_fan(Tensor(np.zeros(4)))


class TestDistributions:
    def test_uniform_bounds(self):
        t = init.uniform_(Tensor(np.zeros(10_000)), -2.0, 3.0)
        assert t.data.min() >= -2.0 and t.data.max() <= 3.0
        assert t.data.mean() == pytest.approx(0.5, abs=0.1)

    def test_normal_moments(self):
        t = init.normal_(Tensor(np.zeros(50_000)), mean=1.0, std=2.0)
        assert t.data.mean() == pytest.approx(1.0, abs=0.1)
        assert t.data.std() == pytest.approx(2.0, abs=0.1)

    def test_constants(self):
        assert np.all(init.zeros_(Tensor(np.ones(4))).data == 0)
        assert np.all(init.ones_(Tensor(np.zeros(4))).data == 1)
        assert np.all(init.constant_(Tensor(np.zeros(4)), 7.5).data == 7.5)

    def test_kaiming_uniform_bound(self):
        weight = Tensor(np.zeros((64, 64)))
        init.kaiming_uniform_(weight, nonlinearity="relu")
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 64)
        assert np.abs(weight.data).max() <= bound + 1e-6

    def test_kaiming_normal_std(self):
        weight = Tensor(np.zeros((400, 400)))
        init.kaiming_normal_(weight, mode="fan_in", nonlinearity="relu")
        assert weight.data.std() == pytest.approx(math.sqrt(2.0 / 400), rel=0.1)

    def test_xavier_uniform_bound(self):
        weight = Tensor(np.zeros((10, 30)))
        init.xavier_uniform_(weight)
        bound = math.sqrt(6.0 / 40)
        assert np.abs(weight.data).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        weight = Tensor(np.zeros((300, 300)))
        init.xavier_normal_(weight)
        assert weight.data.std() == pytest.approx(math.sqrt(2.0 / 600), rel=0.15)

    def test_unknown_nonlinearity_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform_(Tensor(np.zeros((4, 4))), nonlinearity="swish")


class TestSeededness:
    def test_initializers_respect_global_seed(self):
        nn.manual_seed(1)
        a = init.normal_(Tensor(np.zeros(32))).data.copy()
        nn.manual_seed(1)
        b = init.normal_(Tensor(np.zeros(32))).data.copy()
        assert np.array_equal(a, b)


class TestTruncatedNormal:
    def test_googlenet_truncnorm_respects_bound(self):
        from repro.nn.models.googlenet import _truncated_normal_

        t = Tensor(np.zeros(20_000))
        _truncated_normal_(t, std=0.01, bound=2.0)
        assert np.abs(t.data).max() <= 0.02 + 1e-6
        assert t.data.std() == pytest.approx(0.0088, rel=0.2)  # truncated sigma
