"""Kernel correctness: convolution, pooling, normalization, losses."""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import Tensor, rng


def scipy_conv2d(x, w, b, stride, padding, groups=1):
    """Reference convolution via scipy.signal.correlate."""
    from scipy.signal import correlate

    n, c, h, w_in = x.shape
    out_channels, cg, kh, kw = w.shape
    x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w_in + 2 * padding - kw) // stride + 1
    out = np.zeros((n, out_channels, oh, ow), dtype=np.float64)
    og = out_channels // groups
    for i in range(n):
        for o in range(out_channels):
            g = o // og
            acc = np.zeros((h + 2 * padding - kh + 1, w_in + 2 * padding - kw + 1))
            for ci in range(cg):
                acc += correlate(
                    x[i, g * cg + ci].astype(np.float64),
                    w[o, ci].astype(np.float64),
                    mode="valid",
                )
            out[i, o] = acc[::stride, ::stride]
            if b is not None:
                out[i, o] += b[o]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 3)])
    def test_matches_scipy_reference(self, stride, padding):
        nn.manual_seed(0)
        x = nn.randn(2, 3, 8, 8)
        w = nn.randn(5, 3, 3, 3)
        b = nn.randn(5)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        ref = scipy_conv2d(x.data, w.data, b.data, stride, padding)
        assert out.shape == ref.shape
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_depthwise_matches_grouped_reference(self):
        nn.manual_seed(1)
        x = nn.randn(2, 4, 6, 6)
        w = nn.randn(4, 1, 3, 3)
        out = F.conv2d(x, w, None, padding=1, groups=4)
        ref = scipy_conv2d(x.data, w.data, None, 1, 1, groups=4)
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_intermediate_group_count(self):
        nn.manual_seed(2)
        x = nn.randn(1, 4, 5, 5)
        w = nn.randn(6, 2, 3, 3)
        out = F.conv2d(x, w, None, padding=1, groups=2)
        ref = scipy_conv2d(x.data, w.data, None, 1, 1, groups=2)
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_weight_gradient_numeric(self):
        nn.manual_seed(3)
        x = nn.randn(1, 2, 5, 5)
        w = Tensor(np.random.default_rng(0).normal(size=(3, 2, 3, 3)).astype(np.float32),
                   requires_grad=True)
        out = F.conv2d(x, w, None, stride=2, padding=1)
        (out * out).sum().backward()

        def loss():
            o = F.conv2d(Tensor(x.data), Tensor(w.data), None, stride=2, padding=1)
            return float((o.data**2).sum())

        eps = 1e-2
        for index in [(0, 0, 0, 0), (1, 1, 2, 2), (2, 0, 1, 1)]:
            original = w.data[index]
            w.data[index] = original + eps
            upper = loss()
            w.data[index] = original - eps
            lower = loss()
            w.data[index] = original
            numeric = (upper - lower) / (2 * eps)
            assert np.isclose(w.grad[index], numeric, rtol=5e-2, atol=1e-2)

    def test_input_gradient_numeric(self):
        x = Tensor(np.random.default_rng(1).normal(size=(1, 2, 4, 4)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(np.random.default_rng(2).normal(size=(2, 2, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, None, padding=1)
        (out * out).sum().backward()

        def loss():
            o = F.conv2d(Tensor(x.data), w, None, padding=1)
            return float((o.data**2).sum())

        eps = 1e-2
        for index in [(0, 0, 0, 0), (0, 1, 2, 3)]:
            original = x.data[index]
            x.data[index] = original + eps
            upper = loss()
            x.data[index] = original - eps
            lower = loss()
            x.data[index] = original
            numeric = (upper - lower) / (2 * eps)
            assert np.isclose(x.grad[index], numeric, rtol=5e-2, atol=1e-2)

    def test_bias_gradient_is_output_sum(self):
        x = nn.randn(2, 1, 4, 4)
        w = nn.randn(2, 1, 3, 3)
        b = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        assert np.allclose(b.grad, [2 * 16, 2 * 16])

    def test_channel_mismatch_raises(self):
        x = nn.randn(1, 3, 4, 4)
        w = nn.randn(2, 4, 3, 3)
        with pytest.raises(ValueError):
            F.conv2d(x, w, None)

    def test_groups_not_dividing_channels_raises(self):
        x = nn.randn(1, 3, 4, 4)
        w = nn.randn(3, 1, 3, 3)
        with pytest.raises(ValueError):
            F.conv2d(x, w, None, groups=2)


class TestDeterminism:
    def _conv_once(self):
        nn.manual_seed(5)
        x = nn.randn(2, 8, 8, 8)
        w = nn.randn(8, 8, 3, 3, requires_grad=True)
        out = F.conv2d(x, w, None, padding=1)
        out.sum().backward()
        return np.concatenate([out.data.reshape(-1), w.grad.reshape(-1)])

    def test_deterministic_mode_is_bitwise_stable(self):
        with rng.deterministic_mode(True):
            assert np.array_equal(self._conv_once(), self._conv_once())

    def test_nondeterministic_mode_varies_but_is_close(self):
        with rng.deterministic_mode(False):
            a, b = self._conv_once(), self._conv_once()
        assert not np.array_equal(a, b)
        assert np.allclose(a, b, rtol=1e-3, atol=1e-4)

    def test_reduced_matmul_deterministic_chunking_matches_full(self):
        a = np.random.default_rng(0).normal(size=(4, 100)).astype(np.float64)
        b = np.random.default_rng(1).normal(size=(100, 3)).astype(np.float64)
        with rng.deterministic_mode(True):
            rng.set_deterministic_chunk_size(7)
            try:
                chunked = F.reduced_matmul(a, b)
            finally:
                rng.set_deterministic_chunk_size(rng.DEFAULT_DETERMINISTIC_CHUNK)
        assert np.allclose(chunked, a @ b, atol=1e-9)

    def test_legacy_kernel_uses_smaller_chunks(self):
        assert F._det_chunk("legacy") < F._det_chunk("standard")


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert out.data.reshape(-1).tolist() == [5, 7, 13, 15]

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.allclose(x.grad[0, 0], expected)

    def test_overlapping_max_pool_with_padding(self):
        x = Tensor(np.ones((1, 2, 5, 5), dtype=np.float32), requires_grad=True)
        out = F.max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (1, 2, 3, 3)
        out.sum().backward()
        assert x.grad.sum() == pytest.approx(2 * 9)

    def test_avg_pool_values_and_gradient(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert out.data.reshape(-1).tolist() == [2.5, 4.5, 10.5, 12.5]
        out.sum().backward()
        assert np.allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_adaptive_avg_pool_to_one(self):
        x = Tensor(np.ones((2, 3, 7, 7), dtype=np.float32))
        out = F.adaptive_avg_pool2d(x, 1)
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out.data, 1.0)

    def test_adaptive_avg_pool_divisible(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.adaptive_avg_pool2d(x, (2, 2))
        assert out.shape == (1, 1, 2, 2)
        assert out.data.reshape(-1).tolist() == [2.5, 4.5, 10.5, 12.5]

    def test_adaptive_avg_pool_non_divisible(self):
        x = Tensor(np.ones((1, 1, 5, 5), dtype=np.float32), requires_grad=True)
        out = F.adaptive_avg_pool2d(x, (2, 2))
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert x.grad is not None


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        mean = np.zeros(4, dtype=np.float32)
        var = np.ones(4, dtype=np.float32)
        out = F.batch_norm(x, mean, var, None, None, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated_in_training(self):
        x = Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        mean = np.zeros(2, dtype=np.float32)
        var = np.ones(2, dtype=np.float32)
        F.batch_norm(x, mean, var, None, None, training=True, momentum=0.5)
        assert np.allclose(mean, 5.0)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 4.0, dtype=np.float32))
        mean = np.array([4.0], dtype=np.float32)
        var = np.array([1.0], dtype=np.float32)
        out = F.batch_norm(x, mean, var, None, None, training=False)
        assert np.allclose(out.data, 0.0, atol=1e-3)

    def test_affine_weight_bias_applied(self):
        x = Tensor(np.zeros((2, 1, 2, 2), dtype=np.float32))
        mean = np.zeros(1, dtype=np.float32)
        var = np.ones(1, dtype=np.float32)
        weight = Tensor(np.array([2.0], dtype=np.float32))
        bias = Tensor(np.array([3.0], dtype=np.float32))
        out = F.batch_norm(x, mean, var, weight, bias, training=False)
        assert np.allclose(out.data, 3.0, atol=1e-3)


class TestActivationsDropout:
    def test_relu_masks_negatives(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        out = F.relu(a)
        assert out.data.tolist() == [0, 2]
        out.sum().backward()
        assert a.grad.tolist() == [0, 1]

    def test_relu6_clips_both_sides(self):
        a = Tensor([-1.0, 3.0, 9.0], requires_grad=True)
        out = F.relu6(a)
        assert out.data.tolist() == [0, 3, 6]
        out.sum().backward()
        assert a.grad.tolist() == [0, 1, 0]

    def test_dropout_eval_is_identity(self):
        a = Tensor(np.ones(100, dtype=np.float32))
        assert np.array_equal(F.dropout(a, 0.5, training=False).data, a.data)

    def test_dropout_scales_survivors(self):
        nn.manual_seed(0)
        a = Tensor(np.ones(10000, dtype=np.float32))
        out = F.dropout(a, 0.5, training=True)
        survivors = out.data[out.data > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_dropout_reproducible_with_seed(self):
        a = Tensor(np.ones(64, dtype=np.float32))
        nn.manual_seed(3)
        first = F.dropout(a, 0.5, training=True).data.copy()
        nn.manual_seed(3)
        second = F.dropout(a, 0.5, training=True).data.copy()
        assert np.array_equal(first, second)


class TestLosses:
    def test_log_softmax_normalizes(self):
        x = nn.randn(3, 5)
        out = F.log_softmax(x, dim=-1)
        assert np.allclose(np.exp(out.data).sum(axis=-1), 1.0, atol=1e-5)

    def test_softmax_gradient_sums_to_zero(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]], dtype=np.float32), requires_grad=True)
        F.log_softmax(x)[0, 0].sum().backward()
        assert np.isclose(x.grad.sum(), 0.0, atol=1e-6)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert np.isclose(loss.item(), np.log(4), atol=1e-5)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.zeros((1, 2), dtype=np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        assert np.allclose(logits.grad, [[0.5, -0.5]], atol=1e-5)

    def test_cross_entropy_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[20.0, 0.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0]))
        assert loss.item() < 1e-4

    def test_mse_loss(self):
        prediction = Tensor([1.0, 2.0], requires_grad=True)
        loss = F.mse_loss(prediction, Tensor([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)
        loss.backward()
        assert np.allclose(prediction.grad, [1.0, 2.0])
