"""Additional activations, LayerNorm, and the BCE-with-logits loss."""

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import LayerNorm, Tensor


def numeric_grad(fn, tensor, eps=1e-3):
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    it = np.nditer(tensor.data, flags=["multi_index"])
    for _ in it:
        index = it.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        upper = fn()
        tensor.data[index] = original - eps
        lower = fn()
        tensor.data[index] = original
        grad[index] = (upper - lower) / (2 * eps)
    return grad


class TestSigmoid:
    def test_range_and_midpoint(self):
        out = F.sigmoid(Tensor([-100.0, 0.0, 100.0]))
        assert np.allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)

    def test_no_overflow_for_extreme_inputs(self):
        out = F.sigmoid(Tensor([-1e4, 1e4]))
        assert np.all(np.isfinite(out.data))

    def test_gradient_matches_numeric(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0], dtype=np.float32), requires_grad=True)
        F.sigmoid(x).sum().backward()
        numeric = numeric_grad(lambda: float(F.sigmoid(Tensor(x.data)).data.sum()), x)
        assert np.allclose(x.grad, numeric, atol=1e-3)


class TestTanh:
    def test_values(self):
        out = F.tanh(Tensor([0.0, 100.0]))
        assert np.allclose(out.data, [0.0, 1.0], atol=1e-6)

    def test_gradient_is_one_minus_square(self):
        x = Tensor(np.array([0.7], dtype=np.float32), requires_grad=True)
        out = F.tanh(x)
        out.backward()
        assert np.allclose(x.grad, 1.0 - out.data**2, atol=1e-6)


class TestGelu:
    def test_asymptotics(self):
        out = F.gelu(Tensor([-100.0, 0.0, 100.0]))
        assert np.allclose(out.data, [0.0, 0.0, 100.0], atol=1e-4)

    def test_gradient_matches_numeric(self):
        x = Tensor(np.array([-1.5, -0.2, 0.9], dtype=np.float32), requires_grad=True)
        F.gelu(x).sum().backward()
        numeric = numeric_grad(lambda: float(F.gelu(Tensor(x.data)).data.sum()), x)
        assert np.allclose(x.grad, numeric, atol=1e-2)


class TestLayerNorm:
    def test_normalizes_last_dimension(self):
        x = Tensor(np.random.default_rng(0).normal(3, 2, size=(4, 16)).astype(np.float32))
        out = F.layer_norm(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_parameters_applied(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 8)).astype(np.float32))
        weight = Tensor(np.full(8, 2.0, dtype=np.float32))
        bias = Tensor(np.full(8, 5.0, dtype=np.float32))
        out = F.layer_norm(x, weight, bias)
        plain = F.layer_norm(x)
        assert np.allclose(out.data, plain.data * 2.0 + 5.0, atol=1e-5)

    def test_module_state_dict_and_backward(self):
        layer = LayerNorm(8)
        state = layer.state_dict()
        assert set(state) == {"weight", "bias"}
        x = nn.randn(4, 8, requires_grad=True)
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_works_on_sequence_inputs(self):
        layer = LayerNorm(16)
        out = layer(nn.randn(2, 5, 16))
        assert out.shape == (2, 5, 16)


class TestBCEWithLogits:
    def test_matches_reference_formula(self):
        logits = Tensor(np.array([0.0, 2.0, -3.0], dtype=np.float32))
        target = np.array([0.0, 1.0, 0.0], dtype=np.float32)
        loss = F.binary_cross_entropy_with_logits(logits, target)
        probability = 1.0 / (1.0 + np.exp(-logits.data))
        reference = -(
            target * np.log(probability) + (1 - target) * np.log(1 - probability)
        ).mean()
        assert loss.item() == pytest.approx(float(reference), rel=1e-5)

    def test_stable_for_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1e4, -1e4]), np.array([1.0, 0.0], dtype=np.float32)
        )
        assert np.isfinite(loss.item()) and loss.item() < 1e-3

    def test_gradient_is_probability_minus_target(self):
        logits = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        target = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        F.binary_cross_entropy_with_logits(logits, target).backward()
        assert np.allclose(logits.grad, (0.5 - target) / 4, atol=1e-6)

    def test_trains_binary_classifier(self):
        nn.manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 1))
        optimizer = nn.SGD(list(model.parameters()), lr=0.5)
        x = nn.randn(32, 4)
        target = (x.data[:, 0] > 0).astype(np.float32).reshape(-1, 1)
        first = None
        for _ in range(50):
            optimizer.zero_grad()
            loss = F.binary_cross_entropy_with_logits(model(x), target)
            first = first or loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.5
