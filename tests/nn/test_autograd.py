"""Autograd graph mechanics: gradient modes, graph structure, edge cases."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor, enable_grad, is_grad_enabled, no_grad


class TestGradModes:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_blocks_graph_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert out._node is None
        assert not out.requires_grad_through()

    def test_no_grad_restores_on_exit(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                out = a * 2
            assert out.requires_grad_through()
        out.backward(np.ones(1))
        assert np.allclose(a.grad, [2.0])

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestGraphStructure:
    def test_leaf_accumulates_grad_attribute(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 3).backward()
        assert a._node is None  # leaves never get nodes
        assert a.grad is not None

    def test_intermediate_tensors_do_not_store_grad(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        (b * 3).backward()
        assert b.grad is None  # only leaves accumulate
        assert np.allclose(a.grad, [6.0])

    def test_ops_on_non_grad_tensors_record_nothing(self):
        a = Tensor([1.0])
        out = a * 2 + 3
        assert out._node is None

    def test_deep_chain_backward(self):
        """Iterative topological sort: deep graphs must not hit recursion limits."""
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        assert np.allclose(a.grad, [1.0])

    def test_shared_subexpression_counted_once(self):
        a = Tensor([2.0], requires_grad=True)
        shared = a * 3
        out = shared + shared
        out.backward()
        assert np.allclose(a.grad, [6.0])

    def test_backward_twice_through_same_graph(self):
        a = Tensor([1.0], requires_grad=True)
        out = a * 5
        out.backward(np.ones(1))
        out.backward(np.ones(1))
        assert np.allclose(a.grad, [10.0])


class TestMixedRequiresGrad:
    def test_grad_only_flows_to_requiring_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # does not require grad
        (a * b).backward()
        assert np.allclose(a.grad, [2.0])
        assert b.grad is None

    def test_detach_blocks_one_branch(self):
        a = Tensor([3.0], requires_grad=True)
        left = a * 2
        right = (a * 4).detach()
        (left + right).backward()
        assert np.allclose(a.grad, [2.0])  # only the live branch


class TestInferenceUnderNoGrad:
    def test_model_forward_under_no_grad_builds_no_graph(self, tiny_cnn, tiny_batch):
        images, _ = tiny_batch
        tiny_cnn.eval()
        with no_grad():
            out = tiny_cnn(images)
        assert out._node is None
        with pytest.raises(RuntimeError):
            out.sum().backward()
