"""Concurrent node execution against the shared stores."""

import numpy as np
import pytest

from repro.distsim import FlowConfig, SharedStores, run_evaluation_flow
from repro.workloads import ChainConfig, build_chain


@pytest.fixture(scope="module")
def chain(tmp_path_factory):
    return build_chain(
        tmp_path_factory.mktemp("conc-chain"),
        ChainConfig(
            architecture="mobilenetv2",
            scale=0.125,
            num_classes=10,
            iterations=2,
            u2_epochs=1,
            u3_epochs=1,
            batches_per_epoch=1,
            dataset_scale=1 / 2048,
            image_size=16,
        ),
    )


FLOW = FlowConfig("CONC-4", num_nodes=4, iterations=2)


class TestConcurrentNodes:
    @pytest.mark.parametrize("approach", ["baseline", "param_update"])
    def test_all_models_saved_and_recoverable(self, chain, tmp_path, approach):
        stores = SharedStores.at(tmp_path / approach)
        metrics = run_evaluation_flow(
            approach, chain, FLOW, stores, concurrent_nodes=True
        )
        assert metrics.model_count == FLOW.model_count
        # no lost updates: every model id is unique and recovered exactly
        ids = [record.model_id for record in metrics.records]
        assert len(set(ids)) == len(ids)
        assert all(record.ttr_seconds is not None for record in metrics.records)

    def test_concurrent_matches_sequential_storage(self, chain, tmp_path):
        sequential = run_evaluation_flow(
            "param_update", chain, FLOW, SharedStores.at(tmp_path / "seq"),
            measure_recover=False,
        )
        concurrent = run_evaluation_flow(
            "param_update", chain, FLOW, SharedStores.at(tmp_path / "conc"),
            measure_recover=False, concurrent_nodes=True,
        )
        for use_case, size in sequential.storage().items():
            # timestamps render with varying JSON digit counts: allow a
            # few bytes of document-size wiggle
            assert concurrent.storage()[use_case] == pytest.approx(size, abs=8)

    def test_per_node_chains_stay_consistent(self, chain, tmp_path):
        """Each node's chain must link to its own previous model."""
        stores = SharedStores.at(tmp_path / "chains")
        metrics = run_evaluation_flow(
            "param_update", chain, FLOW, stores, measure_recover=False,
            concurrent_nodes=True,
        )
        from repro.distsim import make_service

        service = make_service("param_update", stores)
        by_node: dict[str, list] = {}
        for record in metrics.records:
            by_node.setdefault(record.node, []).append(record)
        for node, records in by_node.items():
            if node == "server":
                continue
            # the last U_3-1 model's chain must walk through all earlier
            # saves of the same node
            last_branch1 = [r for r in records if r.use_case.startswith("U_3-1")][-1]
            chain_ids = service.base_chain(last_branch1.model_id)
            node_branch1 = {r.model_id for r in records if r.use_case.startswith("U_3-1")}
            assert node_branch1 <= set(chain_ids)
