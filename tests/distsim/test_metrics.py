"""Metrics aggregation."""

import pytest

from repro.distsim import FlowMetrics, UseCaseRecord


def record(use_case, node, tts, storage=100, ttr=None):
    return UseCaseRecord(
        use_case=use_case,
        node=node,
        model_id=f"model-{node}-{use_case}",
        tts_seconds=tts,
        storage_bytes=storage,
        ttr_seconds=ttr,
    )


class TestAggregation:
    def test_median_tts_across_nodes(self):
        metrics = FlowMetrics("baseline", "TEST")
        metrics.add(record("U_3-1-1", "node-0", 1.0))
        metrics.add(record("U_3-1-1", "node-1", 3.0))
        metrics.add(record("U_3-1-1", "node-2", 100.0))
        assert metrics.median_tts()["U_3-1-1"] == 3.0

    def test_ttr_ignores_unmeasured_records(self):
        metrics = FlowMetrics("baseline", "TEST")
        metrics.add(record("U_1", "server", 1.0, ttr=None))
        assert metrics.median_ttr() == {}

    def test_use_cases_first_appearance_order(self):
        metrics = FlowMetrics("baseline", "TEST")
        for use_case in ("U_1", "U_3-1-1", "U_1", "U_2"):
            metrics.add(record(use_case, "server", 1.0))
        assert metrics.use_cases() == ["U_1", "U_3-1-1", "U_2"]

    def test_storage_median(self):
        metrics = FlowMetrics("baseline", "TEST")
        metrics.add(record("U_1", "n0", 1.0, storage=50))
        metrics.add(record("U_1", "n1", 1.0, storage=70))
        assert metrics.storage()["U_1"] == 60.0


class TestMerge:
    def test_merge_combines_records_for_cross_run_medians(self):
        a = FlowMetrics("baseline", "TEST")
        a.add(record("U_1", "server", 1.0))
        b = FlowMetrics("baseline", "TEST")
        b.add(record("U_1", "server", 3.0))
        merged = a.merge(b)
        assert merged.model_count == 2
        assert merged.median_tts()["U_1"] == 2.0

    def test_merge_rejects_mismatched_experiments(self):
        a = FlowMetrics("baseline", "TEST")
        b = FlowMetrics("provenance", "TEST")
        with pytest.raises(ValueError):
            a.merge(b)
