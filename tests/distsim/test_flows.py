"""Evaluation flows: model counts, per-node records, approach behaviour."""

import numpy as np
import pytest

from repro.distsim import (
    DIST_5,
    DIST_10,
    DIST_20,
    STANDARD,
    FlowConfig,
    SharedStores,
    run_evaluation_flow,
)
from repro.workloads import ChainConfig, build_chain


@pytest.fixture(scope="module")
def chain(tmp_path_factory):
    return build_chain(
        tmp_path_factory.mktemp("flow-chain"),
        ChainConfig(
            architecture="mobilenetv2",
            scale=0.125,
            num_classes=10,
            iterations=2,
            u2_epochs=1,
            u3_epochs=1,
            batches_per_epoch=1,
            dataset_scale=1 / 2048,
            image_size=16,
        ),
    )


TINY = FlowConfig("TINY", num_nodes=2, iterations=2)


class TestFlowConfigs:
    def test_paper_table3_model_counts(self):
        assert STANDARD.model_count == 10
        assert DIST_5.model_count == 102
        assert DIST_10.model_count == 202
        assert DIST_20.model_count == 402

    def test_chain_must_cover_flow_iterations(self, chain, tmp_path):
        stores = SharedStores.at(tmp_path / "s")
        with pytest.raises(ValueError, match="iterations"):
            run_evaluation_flow("baseline", chain, DIST_5, stores)


class TestBaselineFlow:
    @pytest.fixture(scope="class")
    def metrics(self, chain, tmp_path_factory):
        stores = SharedStores.at(tmp_path_factory.mktemp("ba-flow"))
        return run_evaluation_flow("baseline", chain, TINY, stores)

    def test_model_count(self, metrics):
        assert metrics.model_count == TINY.model_count == 10

    def test_node_attribution(self, metrics):
        server_records = [r for r in metrics.records if r.node == "server"]
        assert {r.use_case for r in server_records} == {"U_1", "U_2"}
        node_records = [r for r in metrics.records if r.node.startswith("node-")]
        assert len(node_records) == 8

    def test_every_record_measured(self, metrics):
        for record in metrics.records:
            assert record.tts_seconds > 0
            assert record.ttr_seconds is not None and record.ttr_seconds > 0
            assert record.storage_bytes > 0

    def test_ba_storage_constant_across_use_cases(self, metrics):
        storage = metrics.storage()
        values = list(storage.values())
        assert max(values) / min(values) < 1.05

    def test_ba_recovery_depth_always_zero(self, metrics):
        assert all(r.recovery_depth == 0 for r in metrics.records)

    def test_use_case_ordering(self, metrics):
        assert metrics.use_cases() == [
            "U_1", "U_3-1-1", "U_3-1-2", "U_2", "U_3-2-1", "U_3-2-2",
        ]


class TestParamUpdateFlow:
    @pytest.fixture(scope="class")
    def metrics(self, chain, tmp_path_factory):
        stores = SharedStores.at(tmp_path_factory.mktemp("pua-flow"))
        return run_evaluation_flow("param_update", chain, TINY, stores)

    def test_ttr_staircase_within_branches(self, metrics):
        """§4.4: recovery depth (and thus TTR) grows per U_3 iteration and
        resets at U_2."""
        depth = {r.use_case: r.recovery_depth for r in metrics.records}
        assert depth["U_1"] == 0
        assert depth["U_3-1-1"] == 1
        assert depth["U_3-1-2"] == 2
        assert depth["U_2"] == 1
        assert depth["U_3-2-1"] == 2
        assert depth["U_3-2-2"] == 3

    def test_all_models_verified_on_recovery(self, chain, tmp_path_factory):
        stores = SharedStores.at(tmp_path_factory.mktemp("pua-verify"))
        metrics = run_evaluation_flow("param_update", chain, TINY, stores)
        assert all(r.ttr_seconds is not None for r in metrics.records)


class TestProvenanceFlow:
    @pytest.fixture(scope="class")
    def metrics(self, chain, tmp_path_factory):
        stores = SharedStores.at(tmp_path_factory.mktemp("mpa-flow"))
        return run_evaluation_flow("provenance", chain, TINY, stores)

    def test_mpa_ttr_dominates_other_approaches(self, metrics):
        ttr = metrics.median_ttr()
        assert ttr["U_3-2-2"] > 5 * ttr["U_1"]

    def test_mpa_storage_has_dataset_component(self, metrics):
        derived = [r for r in metrics.records if r.use_case == "U_3-1-1"]
        assert all("dataset" in r.storage_files for r in derived)

    def test_u2_storage_peak_from_larger_dataset(self, metrics):
        """§4.1: the MPA peaks at U_2 because mINet_val is larger."""
        storage = metrics.storage()
        assert storage["U_2"] > 1.5 * storage["U_3-1-1"]


class TestSkipRecover:
    def test_measure_recover_false_skips_ttr(self, chain, tmp_path):
        stores = SharedStores.at(tmp_path / "s")
        metrics = run_evaluation_flow(
            "baseline", chain, TINY, stores, measure_recover=False
        )
        assert all(r.ttr_seconds is None for r in metrics.records)
        assert metrics.median_ttr() == {}


class TestUnknownApproach:
    def test_rejected(self, chain, tmp_path):
        stores = SharedStores.at(tmp_path / "s")
        with pytest.raises(KeyError, match="unknown approach"):
            run_evaluation_flow("zip_everything", chain, TINY, stores)


class TestNetworkedFlow:
    def test_flow_over_simulated_link_accounts_transfers(self, chain, tmp_path):
        from repro.filestore import NetworkModel

        link = NetworkModel(bandwidth_bytes_per_s=50e6, latency_s=1e-3)
        stores = SharedStores.at(tmp_path / "net", network=link)
        metrics = run_evaluation_flow(
            "baseline", chain, TINY, stores, measure_recover=False
        )
        assert metrics.model_count == TINY.model_count
        files = stores.files
        # every snapshot's bytes crossed the link at least once
        total_storage = sum(r.storage_bytes for r in metrics.records)
        assert files.bytes_sent > 0.5 * total_storage
        assert files.simulated_seconds > 0
