"""Shared stores, participants, and service construction."""

import pytest

from repro.core import BaselineSaveService, ParameterUpdateSaveService, ProvenanceSaveService
from repro.distsim import Node, Server, SharedStores, make_service
from repro.filestore import NetworkModel, SimulatedNetworkFileStore


class TestSharedStores:
    def test_at_creates_directories(self, tmp_path):
        stores = SharedStores.at(tmp_path / "deploy")
        assert stores.scratch_dir.exists()
        stores.documents.collection("x").insert_one({"a": 1})
        file_id = stores.files.save_bytes(b"payload")
        assert stores.files.recover_bytes(file_id) == b"payload"

    def test_network_model_wires_simulated_store(self, tmp_path):
        stores = SharedStores.at(tmp_path / "d", network=NetworkModel(1e6))
        assert isinstance(stores.files, SimulatedNetworkFileStore)

    def test_total_storage_accounts_docs_and_files(self, tmp_path):
        stores = SharedStores.at(tmp_path / "d")
        assert stores.total_storage_bytes() == 0
        stores.documents.collection("x").insert_one({"k": "v" * 50})
        stores.files.save_bytes(b"y" * 100)
        assert stores.total_storage_bytes() > 150


class TestMakeService:
    @pytest.mark.parametrize(
        "approach,cls",
        [
            ("baseline", BaselineSaveService),
            ("param_update", ParameterUpdateSaveService),
            ("provenance", ProvenanceSaveService),
        ],
    )
    def test_approach_dispatch(self, tmp_path, approach, cls):
        stores = SharedStores.at(tmp_path / approach)
        assert isinstance(make_service(approach, stores), cls)

    def test_unknown_approach(self, tmp_path):
        with pytest.raises(KeyError):
            make_service("magic", SharedStores.at(tmp_path / "x"))


class TestParticipants:
    def test_server_and_node_naming(self, tmp_path):
        stores = SharedStores.at(tmp_path / "d")
        server = Server("baseline", stores)
        node = Node(3, "baseline", stores)
        assert server.name == "server"
        assert node.name == "node-3"
        assert node.index == 3
        assert node.current_model_id is None

    def test_latest_model_id_tracks_saves(self, tmp_path):
        stores = SharedStores.at(tmp_path / "d")
        node = Node(0, "baseline", stores)
        assert node.latest_model_id() is None
        node.saved_models["U_1"] = "model-a"
        node.saved_models["U_3-1-1"] = "model-b"
        assert node.latest_model_id() == "model-b"

    def test_participants_share_backing_stores(self, tmp_path):
        stores = SharedStores.at(tmp_path / "d")
        a = Node(0, "baseline", stores)
        b = Node(1, "baseline", stores)
        doc_id = a.stores.documents.collection("models").insert_one({"x": 1})
        assert b.stores.documents.collection("models").get(doc_id)["x"] == 1
