"""Cluster rebalancing: minimal movement, resumable journals, fsck heal."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRebalancer,
    ShardedDocumentStore,
    ShardedFileStore,
    replication_fsck,
)
from repro.core import ArchitectureRef, BaselineSaveService, ModelSaveInfo
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from tests.conftest import make_tiny_cnn


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
    )


def states_equal(model, other) -> bool:
    state, restored = model.state_dict(), other.state_dict()
    return all(np.array_equal(state[key], restored[key]) for key in state)


def make_cluster(tmp_path, n=4, replicas=2) -> ShardedFileStore:
    members = {f"m{index}": FileStore(tmp_path / f"m{index}") for index in range(n)}
    return ShardedFileStore(tmp_path / "meta", members, replicas=replicas)


def make_docs(n=4, replicas=2) -> ShardedDocumentStore:
    return ShardedDocumentStore(
        {f"d{index}": DocumentStore() for index in range(n)}, replicas=replicas
    )


def chunk_placement(store: ShardedFileStore) -> dict[str, set[str]]:
    placement: dict[str, set[str]] = {}
    for name, member in store.members.items():
        for digest in member.chunks.chunk_ids():
            placement.setdefault(digest, set()).add(name)
    return placement


def blob_placement(store: ShardedFileStore) -> dict[str, set[str]]:
    placement: dict[str, set[str]] = {}
    for name, member in store.members.items():
        for file_id in member.file_ids():
            placement.setdefault(file_id, set()).add(name)
    return placement


def assert_placement_matches_ring(store: ShardedFileStore) -> None:
    for digest, holders in chunk_placement(store).items():
        assert holders == set(store.ring.owners(digest)), digest
    for file_id, holders in blob_placement(store).items():
        assert holders == set(store.ring.owners(file_id)), file_id


@pytest.fixture
def populated(tmp_path):
    store = make_cluster(tmp_path)
    service = BaselineSaveService(make_docs(), store)
    model = make_tiny_cnn(seed=1)
    model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
    other = make_tiny_cnn(seed=2)
    service.save_model(ModelSaveInfo(other, tiny_arch()))
    return store, service, model, model_id


class TestAddMember:
    def test_moves_only_keys_whose_ownership_changed(self, populated, tmp_path):
        store, service, model, model_id = populated
        old_ring = store.ring.copy()
        before = chunk_placement(store)

        rebalancer = ClusterRebalancer(store)
        stats = rebalancer.add_member("m4", FileStore(tmp_path / "m4"))

        moved = old_ring.moved_keys(store.ring, sorted(before))
        assert stats["failed"] == 0
        assert stats["chunks_moved"] + stats["blobs_moved"] <= stats["planned"]
        # untouched keys kept their exact replica placement
        after = chunk_placement(store)
        for digest, placement in before.items():
            if digest not in moved:
                assert after[digest] == placement, digest
        assert_placement_matches_ring(store)

    def test_recovery_is_bitwise_after_the_move(self, populated, tmp_path):
        store, service, model, model_id = populated
        ClusterRebalancer(store).add_member("m4", FileStore(tmp_path / "m4"))
        recovered = service.recover_model(model_id, verify=True)
        assert recovered.verified is True
        assert states_equal(model, recovered.model)

    def test_cluster_is_fully_replicated_after_the_move(self, populated, tmp_path):
        store, *_ = populated
        ClusterRebalancer(store).add_member("m4", FileStore(tmp_path / "m4"))
        outcome = replication_fsck(store, repair=False)
        assert outcome["under_replicated"] == []

    def test_duplicate_member_rejected(self, populated, tmp_path):
        store, *_ = populated
        with pytest.raises(ValueError):
            ClusterRebalancer(store).add_member("m0", FileStore(tmp_path / "dup"))


class TestRemoveMember:
    def test_drains_every_key_off_the_leaver(self, populated):
        store, service, model, model_id = populated
        stats = ClusterRebalancer(store).remove_member("m3")
        assert stats["failed"] == 0
        assert "m3" not in store.members
        assert "m3" not in store.ring
        assert_placement_matches_ring(store)
        assert states_equal(model, service.recover_model(model_id).model)

    def test_unknown_member_rejected(self, populated):
        store, *_ = populated
        with pytest.raises(KeyError):
            ClusterRebalancer(store).remove_member("m9")

    def test_failed_drain_keeps_the_leaver_as_a_copy_source(self, populated):
        # keys whose move failed may exist only on the leaver; dropping
        # it anyway would orphan them unrecoverably
        store, service, model, model_id = populated
        rebalancer = ClusterRebalancer(store, workers=1)
        original = rebalancer._move_chunk

        def broken(digest, new_owners):
            raise OSError("injected copy failure")

        rebalancer._move_chunk = broken
        stats = rebalancer.remove_member("m3")
        assert stats["failed"] > 0
        assert stats["drained"] is False
        assert "m3" in store.members  # retained: may hold sole copies
        assert "m3" not in store.ring

        # heal the copy path and retry under the same journal
        rebalancer._move_chunk = original
        stats = rebalancer.remove_member("m3", journal_id=stats["journal_id"])
        assert stats["failed"] == 0
        assert stats["drained"] is True
        assert "m3" not in store.members
        assert_placement_matches_ring(store)
        assert states_equal(model, service.recover_model(model_id).model)


class TestResume:
    def test_interrupted_rebalance_resumes_from_the_journal(self, populated, tmp_path):
        store, service, model, model_id = populated
        rebalancer = ClusterRebalancer(store, workers=1)

        # interrupt: the first migration fails on a subset of chunk moves
        original = rebalancer._move_chunk
        crashed = set()

        def flaky_move(digest, new_owners):
            if len(crashed) < 2 and digest not in crashed:
                crashed.add(digest)
                raise OSError("injected copy failure")
            return original(digest, new_owners)

        rebalancer._move_chunk = flaky_move
        stats = rebalancer.add_member("m4", FileStore(tmp_path / "m4"))
        assert stats["failed"] == len(crashed) > 0
        journal = rebalancer.journal_dir / f"{stats['journal_id']}.jsonl"
        assert journal.exists()  # kept: the rebalance did not finish

        # heal the copy path and resume under the same journal id
        rebalancer._move_chunk = original
        resumed = rebalancer.resume(stats["journal_id"])
        assert resumed["failed"] == 0
        assert resumed["resumed_skips"] > 0  # journaled moves not re-copied
        assert not journal.exists()  # completed: journal retired
        assert_placement_matches_ring(store)
        assert states_equal(model, service.recover_model(model_id).model)

    def test_clean_rebalance_leaves_no_journal(self, populated, tmp_path):
        store, *_ = populated
        rebalancer = ClusterRebalancer(store)
        stats = rebalancer.add_member("m4", FileStore(tmp_path / "m4"))
        assert stats["failed"] == 0
        assert list(rebalancer.journal_dir.glob("*.jsonl")) == []

    def test_invalid_workers_rejected(self, populated):
        store, *_ = populated
        with pytest.raises(ValueError):
            ClusterRebalancer(store, workers=0)


class TestReplicationFsck:
    def test_repairs_under_replicated_chunks(self, populated):
        store, service, model, model_id = populated
        victim = store.members["m0"]
        lost = list(victim.chunks.chunk_ids())
        for digest in lost:
            victim.chunks.drop(digest)
        assert lost

        outcome = replication_fsck(store, repair=True)
        assert {entry["key"] for entry in outcome["repaired"]} >= set(lost)
        assert outcome["unrepairable"] == []
        assert_placement_matches_ring(store)

    def test_report_only_mode_leaves_damage_in_place(self, populated):
        store, *_ = populated
        victim = store.members["m0"]
        lost = list(victim.chunks.chunk_ids())
        for digest in lost:
            victim.chunks.drop(digest)

        outcome = replication_fsck(store, repair=False)
        assert outcome["under_replicated"]
        assert outcome["repaired"] == []
        assert not victim.chunks.has(lost[0])

    def test_drops_stray_replicas_once_owners_are_whole(self, populated):
        store, *_ = populated
        placement = chunk_placement(store)
        digest = sorted(placement)[0]
        stray = next(
            name for name in sorted(store.members) if name not in placement[digest]
        )
        owners = store.ring.owners(digest)
        data = store.members[owners[0]].chunks.get(digest)
        store.members[stray].chunks.put(digest, data)

        outcome = replication_fsck(store, repair=True)
        assert {"kind": "chunk", "key": digest, "member": stray} in outcome[
            "strays_dropped"
        ]
        assert not store.members[stray].chunks.has(digest)

    def test_audit_only_run_reports_blob_with_no_intact_copy(self, populated):
        # repair=False must still surface blobs that *cannot* be
        # repaired, or an audit exits clean on an unrecoverable cluster
        store, *_ = populated
        file_id = sorted(blob_placement(store))[0]
        owners = store.ring.owners(file_id)
        store.members[owners[0]]._discard_blob(file_id)  # under-replicate
        for name in owners[1:]:  # corrupt every surviving copy at rest
            if store.members[name].exists(file_id):
                store.members[name]._restore_blob(file_id, b"garbage")

        audit = replication_fsck(store, repair=False)
        assert {"kind": "blob", "key": file_id} in audit["unrepairable"]
        assert audit["repaired"] == []  # audit-only: nothing written

    def test_key_lost_everywhere_is_unrepairable(self, populated):
        store, *_ = populated
        digest = sorted(chunk_placement(store))[0]
        refcount = max(
            member.chunks.refcount(digest) for member in store.members.values()
        )
        assert refcount > 0  # refcounts keep the key in the audit universe
        for member in store.members.values():
            member.chunks.drop(digest)

        outcome = replication_fsck(store, repair=True)
        assert {"kind": "chunk", "key": digest} in outcome["unrepairable"]
