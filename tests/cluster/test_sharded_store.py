"""Sharded file store: quorum writes, failover reads, read-repair."""

import numpy as np
import pytest

from repro.cluster import ShardedDocumentStore, ShardedFileStore
from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.docstore import DocumentStore
from repro.errors import QuorumWriteError
from repro.faults import FaultInjector
from repro.filestore import FileStore
from tests.conftest import make_tiny_cnn


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
    )


def states_equal(model, other) -> bool:
    state, restored = model.state_dict(), other.state_dict()
    return set(state) == set(restored) and all(
        np.array_equal(state[key], restored[key]) for key in state
    )


def make_cluster(tmp_path, n=4, replicas=2, write_quorum=None) -> ShardedFileStore:
    members = {f"m{index}": FileStore(tmp_path / f"m{index}") for index in range(n)}
    return ShardedFileStore(
        tmp_path / "meta", members, replicas=replicas, write_quorum=write_quorum
    )


def make_docs(n=4, replicas=2) -> ShardedDocumentStore:
    return ShardedDocumentStore(
        {f"d{index}": DocumentStore() for index in range(n)}, replicas=replicas
    )


def chunk_universe(store: ShardedFileStore) -> set[str]:
    universe: set[str] = set()
    for member in store.members.values():
        universe.update(member.chunks.chunk_ids())
    return universe


def key_owned_by(store: ShardedFileStore, victim: str, prefix: str) -> str:
    """A synthetic key whose replica set includes ``victim``."""
    for index in range(10_000):
        key = f"{prefix}-{index}"
        if victim in store.ring.owners(key):
            return key
    raise AssertionError("no key landed on the victim")  # pragma: no cover


class TestRoundTrip:
    def test_save_recover_bitwise(self, tmp_path):
        store = make_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=1)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        recovered = service.recover_model(model_id, verify=True)
        assert recovered.verified is True
        assert states_equal(model, recovered.model)

    def test_chunks_land_exactly_on_ring_owners(self, tmp_path):
        store = make_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        digests = chunk_universe(store)
        assert digests
        for digest in digests:
            holders = {
                name
                for name, member in store.members.items()
                if member.chunks.has(digest)
            }
            assert holders == set(store.ring.owners(digest))

    def test_blobs_land_exactly_on_ring_owners(self, tmp_path):
        store = make_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        file_ids = set(store.file_ids())
        assert file_ids
        for file_id in file_ids:
            holders = {
                name
                for name, member in store.members.items()
                if member.exists(file_id)
            }
            assert holders == set(store.ring.owners(file_id))

    def test_total_bytes_counts_each_replica_once_per_member(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        assert store.total_bytes() == sum(
            member.total_bytes() for member in store.members.values()
        )


class TestQuorumWrites:
    def test_default_write_quorum_is_majority(self, tmp_path):
        assert make_cluster(tmp_path / "a", replicas=2).write_quorum == 2
        assert make_cluster(tmp_path / "b", replicas=3).write_quorum == 2

    def test_saves_succeed_degraded_with_one_replica_down(self, tmp_path):
        # R=3, W=2: a full outage of one member leaves every write a
        # functioning majority
        store = make_cluster(tmp_path, replicas=3)
        store.members["m0"].faults = FaultInjector(seed=7, error_rate=1.0)
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=2)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))

        assert store.cluster_stats["degraded_writes"] > 0
        assert store.degraded_keys
        # reads fail over around the dead member, bitwise
        recovered = service.recover_model(model_id, verify=False)
        assert states_equal(model, recovered.model)

    def test_replication_fsck_completes_degraded_writes(self, tmp_path):
        store = make_cluster(tmp_path, replicas=3)
        store.members["m0"].faults = FaultInjector(seed=7, error_rate=1.0)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch()))

        store.members["m0"].faults = None  # the member comes back
        outcome = store.replication_fsck(repair=True)
        assert outcome["repaired"]
        assert not outcome["unrepairable"]
        # second pass: the cluster is whole again
        clean = store.replication_fsck(repair=True)
        assert not clean["under_replicated"]
        assert not store.degraded_keys

    def test_quorum_error_when_acks_short(self, tmp_path):
        # R=2, W=2: a dead owner makes its keys unwritable
        store = make_cluster(tmp_path, replicas=2, write_quorum=2)
        store.members["m0"].faults = FaultInjector(seed=7, error_rate=1.0)

        blob_id = key_owned_by(store, "m0", "blob")
        with pytest.raises(QuorumWriteError):
            store._write_blob(blob_id, b"payload")

        digest = key_owned_by(store, "m0", "digest")
        with pytest.raises(QuorumWriteError):
            store.put_chunk(digest, b"payload")

    def test_whole_quorum_retry_is_idempotent(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        digest = key_owned_by(store, "m1", "digest")
        assert store.put_chunk(digest, b"payload") is True
        assert store.put_chunk(digest, b"payload") is False  # dedup, no rewrite
        holders = [m for m in store.members.values() if m.chunks.has(digest)]
        assert len(holders) == 2


class TestFailoverReads:
    def test_chunk_failover_read_repairs_the_missing_replica(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=3)
        service.save_model(ModelSaveInfo(model, tiny_arch()))

        digest = sorted(chunk_universe(store))[0]
        primary, secondary = store.ring.owners(digest)
        expected_refs = store.members[secondary].chunks.refcount(digest)
        store.members[primary].chunks.drop(digest)
        assert not store.members[primary].chunks.has(digest)

        data = store.get_chunk(digest)
        assert data == store.members[secondary].chunks.get(digest)
        assert store.cluster_stats["failover_reads"] >= 1
        assert store.cluster_stats["read_repairs"] >= 1
        # the primary holds the chunk again, refcount included
        assert store.members[primary].chunks.has(digest)
        assert store.members[primary].chunks.refcount(digest) == expected_refs

    def test_blob_failover_read_repairs_the_missing_replica(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=3), tiny_arch()))

        file_id = sorted(store.file_ids())[0]
        primary = store.ring.owners(file_id)[0]
        store.members[primary]._discard_blob(file_id)

        data = store.recover_bytes(file_id)
        assert data
        assert store.members[primary].exists(file_id)
        assert store.cluster_stats["read_repairs"] >= 1

    def test_read_fails_only_when_every_replica_is_gone(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=3), tiny_arch()))

        digest = sorted(chunk_universe(store))[0]
        for member in store.members.values():
            member.chunks.drop(digest)
        with pytest.raises(KeyError):
            store.get_chunk(digest)

    def test_full_recovery_with_one_member_dark(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = ParameterUpdateSaveService(make_docs(), store)
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = make_tiny_cnn(seed=2)
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )

        store.members["m2"].faults = FaultInjector(seed=5, error_rate=1.0)
        recovered = service.recover_model(derived_id, verify=False)
        assert states_equal(derived, recovered.model)


class TestManagerIntegration:
    def test_fsck_reports_and_repairs_under_replication(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = ParameterUpdateSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=4)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        manager = ModelManager(service)
        assert manager.fsck().clean

        # a member loses its chunk replicas (disk wipe)
        victim = store.members["m1"]
        for digest in list(victim.chunks.chunk_ids()):
            victim.chunks.drop(digest)

        report = manager.fsck()
        issues = [issue for issue in report.issues if issue.kind == "under_replicated"]
        assert issues
        assert all(issue.repaired for issue in issues)
        assert not report.unrepaired

        assert manager.fsck().clean
        recovered = service.recover_model(model_id, verify=False)
        assert states_equal(model, recovered.model)

    def test_fsck_preserves_sole_copy_stranded_on_a_non_owner(self, tmp_path):
        # interrupted rebalance: a chunk's only surviving copy sits on a
        # member the ring does not assign it to.  fsck's orphan sweep
        # must treat that stray as the repair source for the missing
        # owners — not delete it — or fsck itself loses data.
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=6)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        manager = ModelManager(service)

        digest = sorted(chunk_universe(store))[0]
        owners = store.ring.owners(digest)
        stray = next(n for n in sorted(store.members) if n not in owners)
        data = store.members[owners[0]].chunks.get(digest)
        refcount = store.members[owners[0]].chunks.refcount(digest)
        store.members[stray].chunks.put(digest, data)
        store.members[stray].chunks.import_refs({digest: refcount})
        for name in owners:
            store.members[name].chunks.drop(digest)
            store.members[name].chunks.forget_refs([digest])

        report = manager.fsck(repair=True)
        assert not report.unrepaired
        # the owners are whole again and only then was the stray retired
        for name in owners:
            assert store.members[name].chunks.has(digest)
        assert not store.members[stray].chunks.has(digest)
        recovered = service.recover_model(model_id, verify=True)
        assert recovered.verified is True
        assert states_equal(model, recovered.model)

    def test_gc_runs_unmodified_over_the_cluster(self, tmp_path):
        store = make_cluster(tmp_path, replicas=2)
        service = BaselineSaveService(make_docs(), store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(seed=5), tiny_arch()))
        manager = ModelManager(service)
        manager.delete_model(model_id)
        assert chunk_universe(store) == set()
