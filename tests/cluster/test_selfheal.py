"""Self-healing: hinted handoff, anti-entropy, heal()/fsck integration."""

import json

import pytest

from repro.cluster import (
    AntiEntropyScanner,
    ClusterRebalancer,
    FailureDetector,
    HintDeliverer,
    HintLog,
    ShardedDocumentStore,
    ShardedFileStore,
)
from repro.core import ArchitectureRef, BaselineSaveService, ModelManager, ModelSaveInfo
from repro.docstore import DocumentStore, NotFoundError
from repro.faults import FaultInjector, FaultyDocumentStore
from repro.filestore import FileStore
from tests.conftest import make_tiny_cnn

from .test_sharded_store import make_docs, states_equal, tiny_arch


def make_selfheal_cluster(tmp_path, n=4, replicas=2, write_quorum=1):
    """Sharded file store with per-member fault injectors and the
    failure detector + hint log wired in (as ``cluster_at(self_heal=True)``
    does), but built by hand so tests can reach every part."""
    faults = {f"m{index}": FaultInjector(seed=100 + index) for index in range(n)}
    members = {
        f"m{index}": FileStore(tmp_path / f"m{index}", faults=faults[f"m{index}"])
        for index in range(n)
    }
    detector = FailureDetector(members=sorted(members))
    hints = HintLog(tmp_path / "hints")
    store = ShardedFileStore(
        tmp_path / "meta",
        members,
        replicas=replicas,
        write_quorum=write_quorum,
        detector=detector,
        hint_log=hints,
    )
    return store, faults, detector, hints


def recover_member(detector: FailureDetector, name: str) -> None:
    """What ``_probe_down_members`` does after a successful ping: enough
    consecutive successes to walk DOWN -> SUSPECT -> HEALTHY."""
    for _ in range(detector.recovery_threshold):
        detector.record_success(name)


class TestHintLog:
    def test_record_and_dedupe(self, tmp_path):
        log = HintLog(tmp_path / "hints")
        assert log.record("m0", "chunk", "abc123") is True
        assert log.record("m0", "chunk", "abc123") is False  # same IOU
        assert log.record("m0", "blob", "abc123") is True  # other kind
        assert log.total_pending() == 2
        assert log.pending_counts() == {"m0": 2}
        assert log.stats["recorded"] == 2
        assert log.stats["duplicates"] == 1

    def test_resolve_delivered_vs_stale(self, tmp_path):
        log = HintLog(tmp_path / "hints")
        log.record("m0", "chunk", "aa")
        log.record("m0", "chunk", "bb")
        first, second = log.pending("m0")
        log.resolve("m0", first)
        log.resolve("m0", second, stale=True)
        assert log.total_pending() == 0
        assert log.stats["delivered"] == 1
        assert log.stats["stale"] == 1

    def test_pending_survives_reopen(self, tmp_path):
        root = tmp_path / "hints"
        log = HintLog(root)
        log.record("m0", "chunk", "aa")
        log.record("m1", "doc", "model-1", collection="models")
        reopened = HintLog(root)
        assert reopened.total_pending() == 2
        assert reopened.pending_counts() == {"m0": 1, "m1": 1}
        doc_hint = reopened.pending("m1")[0]
        assert doc_hint["collection"] == "models"
        # a replayed IOU is still a duplicate after reopen
        assert reopened.record("m0", "chunk", "aa") is False

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        root = tmp_path / "hints"
        log = HintLog(root)
        log.record("m0", "chunk", "aa")
        log.record("m0", "chunk", "bb")
        path = root / "m0.jsonl"
        with open(path, "a") as handle:
            handle.write('{"op": "hint", "kind": "chunk", "key": "cc"')  # torn
        reopened = HintLog(root)
        assert [h["key"] for h in reopened.pending("m0")] == ["aa", "bb"]

    def test_members_with_hints_and_bytes(self, tmp_path):
        log = HintLog(tmp_path / "hints")
        log.record("m2", "chunk", "aa")
        log.record("m0", "blob", "bb")
        assert log.members_with_hints() == ["m0", "m2"]
        assert log.pending_bytes() > 0


class TestHintedHandoff:
    def save_one(self, store, seed=1):
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=seed)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        return service, model, model_id

    def test_degraded_write_records_hints(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        self.save_one(store)
        assert hints.pending_counts().get("m1", 0) > 0
        assert set(hints.members_with_hints()) == {"m1"}
        assert store.degraded_keys  # writes acked below full replication

    def test_drain_after_restore_fills_missed_replicas(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        service, model, model_id = self.save_one(store)
        owed = hints.pending("m1")
        assert owed
        faults["m1"].set_down(False)
        recover_member(detector, "m1")
        deliverer = HintDeliverer(hints, detector, store.hint_appliers())
        assert deliverer.drain() is True
        assert hints.total_pending() == 0
        member = store.members["m1"]
        for hint in owed:
            if hint["kind"] == "chunk":
                assert member.chunks.has(hint["key"])
            else:
                assert member.exists(hint["key"])
        assert not store.degraded_keys
        recovered = service.recover_model(model_id, verify=True)
        assert states_equal(model, recovered.model)

    def test_deliverer_skips_members_held_down(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        self.save_one(store)
        for _ in range(detector.failure_threshold):
            detector.record_failure("m1")
        deliverer = HintDeliverer(hints, detector, store.hint_appliers())
        round_stats = deliverer.deliver_once()
        assert round_stats["skipped_down"] == 1
        assert round_stats["delivered"] == 0
        assert hints.total_pending() > 0  # nothing dropped, still owed

    def test_hints_race_rebalancer_resolve_stale(self, tmp_path):
        # The member a hint is owed to gets decommissioned before
        # delivery: the rebalancer re-replicates its keys, so the IOUs
        # must resolve as stale instead of failing forever.
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        service, model, model_id = self.save_one(store)
        assert hints.pending_counts().get("m1", 0) > 0
        faults["m1"].set_down(False)
        recover_member(detector, "m1")
        ClusterRebalancer(store).remove_member("m1")
        deliverer = HintDeliverer(hints, detector, store.hint_appliers())
        assert deliverer.drain() is True
        assert hints.total_pending() == 0
        assert deliverer.stats["stale"] > 0
        assert deliverer.stats["delivered"] == 0
        recovered = service.recover_model(model_id, verify=True)
        assert states_equal(model, recovered.model)

    def test_crash_between_apply_and_resolve_replays_as_noop(self, tmp_path):
        # Deliverer applied a hint, then died before resolving it.  The
        # hint survives on disk; replaying it must be a no-op delivery,
        # not a duplicate or an error.
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        self.save_one(store)
        faults["m1"].set_down(False)
        recover_member(detector, "m1")
        appliers = store.hint_appliers()
        victim = hints.pending("m1")[0]
        assert appliers[victim["kind"]]("m1", victim) is True  # applied...
        pending_before = hints.total_pending()
        assert pending_before > 0  # ...but the crash left it unresolved
        reopened = HintLog(tmp_path / "hints")  # the restarted process
        deliverer = HintDeliverer(reopened, detector, appliers)
        assert deliverer.drain() is True
        assert reopened.total_pending() == 0
        assert deliverer.stats["failures"] == 0

    def test_flapping_member_breaker_skips_writes(self, tmp_path):
        # Once the detector trips, writes breaker-skip the member: the
        # save still acks (W=1) and leaves IOUs without touching the
        # dead member again.
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        faults["m1"].set_down(True)
        self.save_one(store, seed=1)
        assert detector.state("m1") == "down"  # outage tripped it
        calls_before = faults["m1"].stats.get("errors", 0)
        self.save_one(store, seed=2)
        assert hints.pending_counts()["m1"] > 0
        # breaker open: the second save never reached the member
        assert faults["m1"].stats.get("errors", 0) == calls_before


class TestDocHintsAndTombstones:
    def make_doc_cluster(self, n=3, replicas=2):
        faults = {f"d{index}": FaultInjector(seed=200 + index) for index in range(n)}
        members = {
            f"d{index}": FaultyDocumentStore(DocumentStore(), faults[f"d{index}"])
            for index in range(n)
        }
        detector = FailureDetector(members=sorted(members))
        hints = HintLog.__new__(HintLog)  # placeholder, replaced below
        return members, faults, detector

    def test_missed_delete_never_resurrects(self, tmp_path):
        members, faults, detector = self.make_doc_cluster()
        hints = HintLog(tmp_path / "hints")
        store = ShardedDocumentStore(
            members, replicas=2, write_quorum=1, detector=detector, hint_log=hints
        )
        collection = store.collection("models")
        doc_id = collection.insert_one({"_id": "model-1", "kind": "demo"})
        victim = store.ring.owners(f"models/{doc_id}")[0]
        faults[victim].set_down(True)  # this owner misses the delete
        assert collection.delete_one(doc_id) is True
        assert hints.pending_counts().get(victim, 0) > 0
        faults[victim].set_down(False)
        recover_member(detector, victim)
        deliverer = HintDeliverer(hints, detector, store.hint_appliers())
        assert deliverer.drain() is True
        # delivery consulted the tombstone: the stale copy is reaped,
        # never copied back over the quorum-acked delete
        with pytest.raises(NotFoundError):
            collection.get(doc_id)
        assert collection.find() == []

    def test_missed_insert_is_delivered(self, tmp_path):
        members, faults, detector = self.make_doc_cluster()
        hints = HintLog(tmp_path / "hints")
        store = ShardedDocumentStore(
            members, replicas=2, write_quorum=1, detector=detector, hint_log=hints
        )
        collection = store.collection("models")
        victim = store.ring.owners("models/model-1")[0]
        faults[victim].set_down(True)
        collection.insert_one({"_id": "model-1", "kind": "demo"})
        assert hints.pending_counts().get(victim, 0) > 0
        faults[victim].set_down(False)
        recover_member(detector, victim)
        deliverer = HintDeliverer(hints, detector, store.hint_appliers())
        assert deliverer.drain() is True
        raw = members[victim].collection("models").get("model-1")
        assert raw["kind"] == "demo"


class TestReadClassification:
    def test_corrupt_replica_repaired_without_tripping_detector(self, tmp_path):
        # A member that answers with bytes failing digest verification is
        # alive: the read fails over, the copy is overwritten, and the
        # failure detector is NOT fed (corrupt != unreachable).
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        file_id = sorted(store.file_ids())[0]
        primary = store.ring.owners(file_id)[0]
        store.members[primary]._restore_blob(file_id, b"garbage")
        data = store.recover_bytes(file_id)
        assert data != b"garbage"
        assert detector.state(primary) == "healthy"
        assert store.cluster_stats["read_repairs"] >= 1
        # the corrupt copy was overwritten in place
        assert store.members[primary].recover_bytes(file_id) == data

    def test_unreachable_replica_feeds_detector(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        file_id = sorted(store.file_ids())[0]
        primary = store.ring.owners(file_id)[0]
        faults[primary].set_down(True)
        assert store.recover_bytes(file_id)  # failover read still serves
        assert detector.snapshot()[primary]["failure_streak"] >= 1


class TestAntiEntropy:
    def test_down_member_keys_deferred_then_healed(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(
            tmp_path, write_quorum=1
        )
        service = BaselineSaveService(make_docs(), store)
        model = make_tiny_cnn(seed=1)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        faults["m1"].set_down(True)
        for _ in range(detector.failure_threshold):
            detector.record_failure("m1")
        scanner = AntiEntropyScanner(store, detector=detector)
        summary = scanner.full_sweep(repair=True)
        assert summary["deferred"] > 0  # m1's keys wait, no writes at a corpse
        assert summary["backlog"] > 0
        assert scanner.backlog_size() == summary["backlog"]
        faults["m1"].set_down(False)
        recover_member(detector, "m1")
        healed = scanner.full_sweep(repair=True)
        assert healed["backlog"] == 0
        assert scanner.backlog_size() == 0
        recovered = service.recover_model(model_id, verify=True)
        assert states_equal(model, recovered.model)

    def test_repairs_under_replicated_key(self, tmp_path):
        store, faults, detector, hints = make_selfheal_cluster(tmp_path)
        service = BaselineSaveService(make_docs(), store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        digest = sorted(
            digest
            for member in store.members.values()
            for digest in member.chunks.chunk_ids()
        )[0]
        victim = store.ring.owners(digest)[0]
        store.members[victim].chunks.drop(digest)
        summary = AntiEntropyScanner(store, detector=detector).full_sweep(repair=True)
        assert summary["repaired"] >= 1
        assert store.members[victim].chunks.has(digest)


class TestManagerSelfHeal:
    def make_manager(self, tmp_path, member_faults):
        from repro.distsim.environment import SharedStores, make_service

        stores = SharedStores.cluster_at(
            tmp_path / "deploy",
            shards=3,
            replicas=2,
            write_quorum=1,
            self_heal=True,
            member_faults=member_faults,
        )
        return stores, ModelManager(make_service("baseline", stores))

    def test_heal_converges_after_outage(self, tmp_path):
        injector = FaultInjector(seed=9)
        stores, manager = self.make_manager(tmp_path, {"shard-1": injector})
        injector.set_down(True)
        model = make_tiny_cnn(seed=1)
        model_id = manager.service.save_model(ModelSaveInfo(model, tiny_arch()))
        assert stores.hints.total_pending() > 0
        injector.set_down(False)
        report = manager.heal(repair=True)
        assert report["cluster"] is True
        assert report["converged"] is True
        assert report["hints"]["pending_after"] == 0
        assert report["hints"]["delivered"] > 0
        assert report["anti_entropy"]["backlog"] == 0
        assert "shard-1" in report["health"]
        recovered = manager.recover(model_id, verify=True)
        assert states_equal(model, recovered.model)

    def test_heal_audit_only_reports_without_writing(self, tmp_path):
        injector = FaultInjector(seed=9)
        stores, manager = self.make_manager(tmp_path, {"shard-1": injector})
        injector.set_down(True)
        manager.service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        injector.set_down(False)
        pending = stores.hints.total_pending()
        report = manager.heal(repair=False)
        assert report["converged"] is False
        assert stores.hints.total_pending() == pending  # audit wrote nothing

    def test_heal_is_noop_on_single_store_deployment(self, tmp_path):
        from repro.distsim.environment import SharedStores, make_service

        stores = SharedStores.at(tmp_path / "solo")
        manager = ModelManager(make_service("baseline", stores))
        assert manager.heal() == {"cluster": False}

    def test_fsck_drains_pending_hints(self, tmp_path):
        injector = FaultInjector(seed=9)
        stores, manager = self.make_manager(tmp_path, {"shard-1": injector})
        injector.set_down(True)
        manager.service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        injector.set_down(False)
        report = manager.fsck(repair=True)
        issues = {issue.kind: issue for issue in report.issues}
        assert "pending_hints" in issues
        assert issues["pending_hints"].repaired is True
        assert stores.hints.total_pending() == 0

    def test_stats_surface_health_and_hints(self, tmp_path):
        injector = FaultInjector(seed=9)
        stores, manager = self.make_manager(tmp_path, {"shard-1": injector})
        injector.set_down(True)
        manager.service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        stats = manager.stats()
        assert set(stats["health"]) == {"shard-0", "shard-1", "shard-2"}
        assert stats["hints"]["total_pending"] > 0
        assert stats["hints"]["pending"].get("shard-1", 0) > 0
        json.dumps(stats)  # the whole report must stay JSON-serializable


class TestEnvironmentWiring:
    def test_cluster_at_self_heal_shares_detector_and_hints(self, tmp_path):
        from repro.distsim.environment import SharedStores

        stores = SharedStores.cluster_at(tmp_path, shards=3, self_heal=True)
        assert stores.detector is not None
        assert stores.hints is not None
        assert stores.files.detector is stores.detector
        assert stores.documents.detector is stores.detector
        assert stores.files.hints is stores.hints
        assert stores.documents.hints is stores.hints

    def test_cluster_at_default_has_no_selfheal_plane(self, tmp_path):
        from repro.distsim.environment import SharedStores

        stores = SharedStores.cluster_at(tmp_path, shards=3)
        assert stores.detector is None
        assert stores.hints is None

    def test_healers_wires_the_background_trio(self, tmp_path):
        from repro.cluster import HealthMonitor
        from repro.distsim.environment import SharedStores

        stores = SharedStores.cluster_at(tmp_path, shards=3, self_heal=True)
        deliverer, scanner, monitor = stores.healers()
        assert isinstance(deliverer, HintDeliverer)
        assert isinstance(scanner, AntiEntropyScanner)
        assert isinstance(monitor, HealthMonitor)
        assert set(monitor.probes) == {"shard-0", "shard-1", "shard-2"}
        # "chunk", "blob" from the file plane, "doc" from the documents
        assert set(deliverer.appliers) == {"chunk", "blob", "doc"}

    def test_healers_require_self_heal_stores(self, tmp_path):
        from repro.distsim.environment import SharedStores

        stores = SharedStores.cluster_at(tmp_path, shards=3)
        with pytest.raises(ValueError):
            stores.healers()
