"""Acceptance: one clustered recover yields one coherent trace tree."""

import pytest

from repro import obs
from repro.core import ArchitectureRef, ModelSaveInfo
from repro.distsim.environment import SharedStores, make_service
from repro.filestore.network import NetworkModel
from tests.conftest import make_tiny_cnn

ARCH = ArchitectureRef.from_factory(
    "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
)


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def cluster_service(tmp_path):
    stores = SharedStores.cluster_at(
        tmp_path / "cluster",
        shards=3,
        replicas=2,
        network=NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-4),
        workers=2,
        chunk_cache_bytes=8 << 20,
    )
    service = make_service("param_update", stores, prefetch_workers=2)
    yield service
    if service.prefetcher is not None:
        service.prefetcher.close()


def test_recover_trace_spans_every_layer(cluster_service):
    """A single recover over ``SharedStores.cluster_at`` must produce ONE
    trace tree reaching from the service through the prefetcher and the
    sharded store down to a member store and its network link."""
    service = cluster_service
    base_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
    derived_id = service.save_model(
        ModelSaveInfo(make_tiny_cnn(), ARCH, base_model_id=base_id)
    )
    obs.tracer().reset()  # isolate the recover's trace from the saves'

    service.recover_model(derived_id)

    tracer = obs.tracer()
    [root] = [sp for sp in tracer.spans() if sp.name == "service.recover_model"]
    names = {sp.name for sp in tracer.spans(trace_id=root.trace_id)}
    assert {
        "service.recover_model",   # service layer
        "recover.document",        # recursive chain recovery
        "store.recover_chunks",    # sharded store (FileStore interface)
        "cluster.member_fetch",    # member store selection
        "net.transfer",            # simulated network link
    } <= names
    # prefetcher worker spans join the same tree via attach()
    assert names & {"prefetch.chain", "prefetch.file"}

    # every span in the buffer belongs to that one recover trace
    assert {sp.trace_id for sp in tracer.spans()} == {root.trace_id}

    tree = tracer.tree(root.trace_id)
    [top] = tree["roots"]
    assert top["span"]["name"] == "service.recover_model"
    assert top["children"]  # nested structure, not a flat list


def test_cluster_counters_cover_save_and_recover(cluster_service):
    service = cluster_service
    model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
    service.recover_model(model_id)
    registry = obs.registry()
    assert registry.value("mmlib_saves_total", approach="param_update") == 1
    assert registry.value("mmlib_recovers_total", approach="param_update") == 1
    assert registry.value("mmlib_network_round_trips_total") > 0
    assert registry.value("mmlib_docstore_requests_total") == 0  # in-process docs
