"""Consistent-hash ring: placement, balance, and minimal movement."""

import pytest

from repro.cluster import HashRing

MEMBERS = ["shard-0", "shard-1", "shard-2", "shard-3"]


def sample_keys(count=2000):
    return [f"chunk-{index:05d}" for index in range(count)]


class TestPlacement:
    def test_owners_are_distinct_members(self):
        ring = HashRing(MEMBERS, replicas=2)
        for key in sample_keys(100):
            owners = ring.owners(key)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert all(owner in MEMBERS for owner in owners)

    def test_primary_is_first_owner(self):
        ring = HashRing(MEMBERS, replicas=3)
        for key in sample_keys(50):
            assert ring.primary(key) == ring.owners(key)[0]

    def test_placement_is_deterministic(self):
        one = HashRing(MEMBERS, replicas=2)
        two = HashRing(list(reversed(MEMBERS)), replicas=2)
        for key in sample_keys(200):
            assert one.owners(key) == two.owners(key)

    def test_replicas_capped_at_member_count(self):
        ring = HashRing(["a", "b"], replicas=3)
        assert len(ring.owners("k")) == 2

    def test_count_override(self):
        ring = HashRing(MEMBERS, replicas=1)
        assert len(ring.owners("k", count=3)) == 3

    def test_empty_ring(self):
        ring = HashRing([], replicas=2)
        assert ring.owners("k") == []
        assert ring.primary("k") is None


class TestBalance:
    def test_load_spread_within_tolerance(self):
        ring = HashRing(MEMBERS, replicas=2)
        load = {name: 0 for name in MEMBERS}
        keys = sample_keys()
        for key in keys:
            for owner in ring.owners(key):
                load[owner] += 1
        expected = len(keys) * 2 / len(MEMBERS)
        for name, count in load.items():
            assert count == pytest.approx(expected, rel=0.35), (name, load)


class TestMembershipChanges:
    def test_add_member_moves_a_bounded_fraction(self):
        old = HashRing(MEMBERS, replicas=2)
        new = old.copy()
        new.add_member("shard-4")
        keys = sample_keys()
        moved = old.moved_keys(new, keys)
        # ideal share for the fifth member is 1/5 of placements; allow slack
        assert 0 < len(moved) < len(keys) * 0.5
        for key, (old_owners, new_owners) in moved.items():
            assert old_owners != new_owners
            assert "shard-4" in new_owners or set(old_owners) != set(new_owners)

    def test_unmoved_keys_keep_their_owners(self):
        old = HashRing(MEMBERS, replicas=2)
        new = old.copy()
        new.add_member("shard-4")
        keys = sample_keys()
        moved = old.moved_keys(new, keys)
        for key in keys:
            if key not in moved:
                assert old.owners(key) == new.owners(key)

    def test_remove_member_reassigns_only_its_keys(self):
        old = HashRing(MEMBERS, replicas=2)
        new = old.copy()
        new.remove_member("shard-3")
        assert "shard-3" not in new
        for key in sample_keys(500):
            new_owners = new.owners(key)
            assert "shard-3" not in new_owners
            old_owners = old.owners(key)
            if "shard-3" not in old_owners:
                assert old_owners == new_owners

    def test_copy_is_independent(self):
        ring = HashRing(MEMBERS, replicas=2)
        clone = ring.copy()
        clone.add_member("shard-9")
        assert "shard-9" not in ring
        assert len(ring) == len(MEMBERS)

    def test_duplicate_member_rejected(self):
        ring = HashRing(MEMBERS)
        with pytest.raises(ValueError):
            ring.add_member("shard-0")
