"""Sharded document store: replication, scatter-gather queries, failover."""

import pytest

from repro.cluster import ShardedDocumentStore
from repro.docstore import DocumentStore, DuplicateKeyError, NotFoundError


def make_store(n=4, replicas=2, write_quorum=None) -> ShardedDocumentStore:
    return ShardedDocumentStore(
        {f"d{index}": DocumentStore() for index in range(n)},
        replicas=replicas,
        write_quorum=write_quorum,
    )


def holders(store: ShardedDocumentStore, collection: str, doc_id: str) -> set[str]:
    found = set()
    for name, member in store.members.items():
        try:
            member.collection(collection).get(doc_id)
        except (KeyError, NotFoundError):
            continue
        found.add(name)
    return found


class TestReplicatedWrites:
    def test_insert_replicates_to_ring_owners(self):
        store = make_store()
        doc_id = store.collection("models").insert_one({"approach": "baseline"})
        owners = set(store.ring.owners(f"models/{doc_id}"))
        assert len(owners) == 2
        assert holders(store, "models", doc_id) == owners

    def test_every_replica_stores_the_same_document(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"epoch": 3})
        copies = [
            store.members[name].collection("models").get(doc_id)
            for name in store.ring.owners(f"models/{doc_id}")
        ]
        assert copies[0] == copies[1]
        assert copies[0]["_id"] == doc_id

    def test_duplicate_insert_raises(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": doc_id, "k": 2})

    def test_partially_acked_insert_retries_cleanly(self):
        # replaying an insert that reached only some replicas must count
        # the duplicates as acks, not as a conflict
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        store.members[owners[0]].collection("models").delete_one(doc_id)
        assert collection.insert_one({"_id": doc_id, "k": 1}) == doc_id
        assert holders(store, "models", doc_id) == set(owners)

    def test_update_one_converges_every_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"epoch": 1, "tag": "keep"})
        assert collection.update_one({"_id": doc_id}, {"epoch": 2}) is True
        for name in store.ring.owners(f"models/{doc_id}"):
            copy = store.members[name].collection("models").get(doc_id)
            assert copy["epoch"] == 2 and copy["tag"] == "keep"

    def test_delete_one_removes_every_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        assert collection.delete_one(doc_id) is True
        assert holders(store, "models", doc_id) == set()
        assert collection.delete_one(doc_id) is False


class TestScatterGatherQueries:
    def test_find_deduplicates_replicas(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(10):
            collection.insert_one({"rank": index})
        assert collection.count() == 10  # not 20, despite R=2

    def test_global_sort_skip_limit(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(10):
            collection.insert_one({"rank": index})
        page = collection.find({}, sort=[("rank", -1)], skip=2, limit=3)
        assert [document["rank"] for document in page] == [7, 6, 5]

    def test_find_with_query_filters_cluster_wide(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(6):
            collection.insert_one({"rank": index, "even": index % 2 == 0})
        assert collection.count({"even": True}) == 3

    def test_get_many_preserves_request_order(self):
        store = make_store()
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(5)]
        wanted = [ids[3], ids[0], ids[4]]
        results = collection.get_many(wanted)
        assert [document["_id"] for document in results] == wanted


class TestFailover:
    def test_get_fails_over_and_repairs_the_missing_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        store.members[owners[0]].collection("models").delete_one(doc_id)

        document = collection.get(doc_id)
        assert document["k"] == 1
        assert holders(store, "models", doc_id) == set(owners)
        assert store.cluster_stats["read_repairs"] >= 1

    def test_get_missing_document_raises(self):
        store = make_store()
        with pytest.raises((KeyError, NotFoundError)):
            store.collection("models").get("no-such-id")

    def test_collection_names_union_across_members(self):
        store = make_store()
        store.collection("models").insert_one({"k": 1})
        store.collection("wrappers").insert_one({"k": 2})
        assert set(store.collection_names()) >= {"models", "wrappers"}


class TestMembershipChanges:
    def test_rebalance_documents_after_adding_a_member(self):
        store = make_store(n=3)
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(20)]

        stats = store.add_member("d9", DocumentStore())
        assert stats["documents_copied"] > 0
        for doc_id in ids:
            assert holders(store, "models", doc_id) == set(
                store.ring.owners(f"models/{doc_id}")
            )
        assert collection.count() == 20

    def test_remove_member_drains_its_documents(self):
        store = make_store(n=4)
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(20)]

        store.remove_member("d0")
        assert "d0" not in store.members
        for doc_id in ids:
            owners = set(store.ring.owners(f"models/{doc_id}"))
            assert "d0" not in owners
            assert holders(store, "models", doc_id) == owners
        assert collection.count() == 20
