"""Sharded document store: replication, scatter-gather queries, failover."""

import pytest

from repro.cluster import ShardedDocumentStore
from repro.cluster.sharded_docs import TOMBSTONES
from repro.docstore import DocumentStore, DuplicateKeyError, NotFoundError
from repro.errors import TransientStoreError


def make_store(n=4, replicas=2, write_quorum=None) -> ShardedDocumentStore:
    return ShardedDocumentStore(
        {f"d{index}": DocumentStore() for index in range(n)},
        replicas=replicas,
        write_quorum=write_quorum,
    )


class DownableStore:
    """Document-store member whose collections go dark on demand."""

    def __init__(self):
        self._inner = DocumentStore()
        self.down = False

    def collection(self, name):
        store, inner = self, self._inner.collection(name)

        class _Proxy:
            def __getattr__(self, attr):
                value = getattr(inner, attr)
                if not callable(value):
                    return value

                def guarded(*args, **kwargs):
                    if store.down:
                        raise OSError("member down")
                    return value(*args, **kwargs)

                return guarded

        return _Proxy()

    def collection_names(self):
        if self.down:
            raise OSError("member down")
        return self._inner.collection_names()

    def drop_collection(self, name):
        self._inner.drop_collection(name)

    def storage_bytes(self):
        return self._inner.storage_bytes()


def make_downable(n=4, replicas=2):
    members = {f"d{index}": DownableStore() for index in range(n)}
    return ShardedDocumentStore(members, replicas=replicas), members


def holders(store: ShardedDocumentStore, collection: str, doc_id: str) -> set[str]:
    found = set()
    for name, member in store.members.items():
        try:
            member.collection(collection).get(doc_id)
        except (KeyError, NotFoundError):
            continue
        found.add(name)
    return found


class TestReplicatedWrites:
    def test_insert_replicates_to_ring_owners(self):
        store = make_store()
        doc_id = store.collection("models").insert_one({"approach": "baseline"})
        owners = set(store.ring.owners(f"models/{doc_id}"))
        assert len(owners) == 2
        assert holders(store, "models", doc_id) == owners

    def test_every_replica_stores_the_same_document(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"epoch": 3})
        copies = [
            store.members[name].collection("models").get(doc_id)
            for name in store.ring.owners(f"models/{doc_id}")
        ]
        assert copies[0] == copies[1]
        assert copies[0]["_id"] == doc_id

    def test_duplicate_insert_raises(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": doc_id, "k": 2})

    def test_partially_acked_insert_retries_cleanly(self):
        # replaying an insert that reached only some replicas must count
        # the duplicates as acks, not as a conflict
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        store.members[owners[0]].collection("models").delete_one(doc_id)
        assert collection.insert_one({"_id": doc_id, "k": 1}) == doc_id
        assert holders(store, "models", doc_id) == set(owners)

    def test_update_one_converges_every_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"epoch": 1, "tag": "keep"})
        assert collection.update_one({"_id": doc_id}, {"epoch": 2}) is True
        for name in store.ring.owners(f"models/{doc_id}"):
            copy = store.members[name].collection("models").get(doc_id)
            assert copy["epoch"] == 2 and copy["tag"] == "keep"

    def test_delete_one_removes_every_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        assert collection.delete_one(doc_id) is True
        assert holders(store, "models", doc_id) == set()
        assert collection.delete_one(doc_id) is False


class TestScatterGatherQueries:
    def test_find_deduplicates_replicas(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(10):
            collection.insert_one({"rank": index})
        assert collection.count() == 10  # not 20, despite R=2

    def test_global_sort_skip_limit(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(10):
            collection.insert_one({"rank": index})
        page = collection.find({}, sort=[("rank", -1)], skip=2, limit=3)
        assert [document["rank"] for document in page] == [7, 6, 5]

    def test_find_with_query_filters_cluster_wide(self):
        store = make_store()
        collection = store.collection("models")
        for index in range(6):
            collection.insert_one({"rank": index, "even": index % 2 == 0})
        assert collection.count({"even": True}) == 3

    def test_get_many_preserves_request_order(self):
        store = make_store()
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(5)]
        wanted = [ids[3], ids[0], ids[4]]
        results = collection.get_many(wanted)
        assert [document["_id"] for document in results] == wanted


class TestFailover:
    def test_get_fails_over_and_repairs_the_missing_replica(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        store.members[owners[0]].collection("models").delete_one(doc_id)

        document = collection.get(doc_id)
        assert document["k"] == 1
        assert holders(store, "models", doc_id) == set(owners)
        assert store.cluster_stats["read_repairs"] >= 1

    def test_get_missing_document_raises(self):
        store = make_store()
        with pytest.raises((KeyError, NotFoundError)):
            store.collection("models").get("no-such-id")

    def test_collection_names_union_across_members(self):
        store = make_store()
        store.collection("models").insert_one({"k": 1})
        store.collection("wrappers").insert_one({"k": 2})
        assert set(store.collection_names()) >= {"models", "wrappers"}


class TestTombstones:
    def test_stale_replica_does_not_resurrect_a_quorum_delete(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        assert collection.delete_one(doc_id) is True
        # a replica that somehow kept the document (missed delete)
        store.members[owners[0]].collection("models").insert_one(
            {"_id": doc_id, "k": 1}
        )

        with pytest.raises(NotFoundError):
            collection.get(doc_id)
        # the failover read finished the delete instead of repairing
        # the stale copy back onto the other owners
        assert holders(store, "models", doc_id) == set()

    def test_find_filters_tombstoned_documents(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        collection.delete_one(doc_id)
        store.members[owners[0]].collection("models").insert_one(
            {"_id": doc_id, "k": 1}
        )

        assert collection.find() == []
        assert collection.count() == 0

    def test_delete_with_a_down_replica_stays_deleted_after_healing(self):
        store, members = make_downable(n=5, replicas=3)
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        members[owners[2]].down = True
        assert collection.delete_one(doc_id) is True  # quorum: 2 of 3
        assert ("models", doc_id) in store.degraded_keys

        members[owners[2]].down = False
        # the healed replica still holds the document, but the
        # tombstone wins: reads finish the delete, never resurrect
        with pytest.raises(NotFoundError):
            collection.get(doc_id)
        assert holders(store, "models", doc_id) == set()

    def test_rebalance_reaps_stale_copies_and_purges_dead_tombstones(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        owners = store.ring.owners(f"models/{doc_id}")
        collection.delete_one(doc_id)
        store.members[owners[0]].collection("models").insert_one(
            {"_id": doc_id, "k": 1}
        )

        stats = store.rebalance_documents()
        assert holders(store, "models", doc_id) == set()
        assert stats["tombstones_purged"] >= 1
        for member in store.members.values():
            assert member.collection(TOMBSTONES).find({}) == []

    def test_reinsert_under_a_deleted_id_supersedes_the_tombstone(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        collection.delete_one(doc_id)
        assert collection.insert_one({"_id": doc_id, "k": 2}) == doc_id
        assert collection.get(doc_id)["k"] == 2
        assert collection.count({"k": 2}) == 1

    def test_tombstone_collection_is_not_user_visible(self):
        store = make_store()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        collection.delete_one(doc_id)
        assert TOMBSTONES not in store.collection_names()


class TestTransientUnavailability:
    def test_get_with_all_owners_down_raises_transient_error(self):
        # an outage must not masquerade as absence: fsck would
        # garbage-collect blobs of documents it cannot see
        store, members = make_downable()
        collection = store.collection("models")
        doc_id = collection.insert_one({"k": 1})
        for name in store.ring.owners(f"models/{doc_id}"):
            members[name].down = True
        with pytest.raises(TransientStoreError):
            collection.get(doc_id)

    def test_get_with_one_owner_down_does_not_prove_absence(self):
        store, members = make_downable()
        collection = store.collection("models")
        doc_id = "no-such-id"
        owners = store.ring.owners(f"models/{doc_id}")
        members[owners[0]].down = True
        with pytest.raises(TransientStoreError):
            collection.get(doc_id)

    def test_find_tolerates_fewer_than_r_members_down(self):
        store, members = make_downable(n=4, replicas=2)
        collection = store.collection("models")
        for index in range(8):
            collection.insert_one({"rank": index})
        members["d0"].down = True
        # every document still has a reachable replica
        assert collection.count() == 8

    def test_find_raises_once_r_members_are_down(self):
        store, members = make_downable(n=4, replicas=2)
        collection = store.collection("models")
        for index in range(8):
            collection.insert_one({"rank": index})
        members["d0"].down = True
        members["d1"].down = True
        with pytest.raises(TransientStoreError):
            collection.find({})


class TestMembershipChanges:
    def test_rebalance_documents_after_adding_a_member(self):
        store = make_store(n=3)
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(20)]

        stats = store.add_member("d9", DocumentStore())
        assert stats["documents_copied"] > 0
        for doc_id in ids:
            assert holders(store, "models", doc_id) == set(
                store.ring.owners(f"models/{doc_id}")
            )
        assert collection.count() == 20

    def test_remove_member_drains_its_documents(self):
        store = make_store(n=4)
        collection = store.collection("models")
        ids = [collection.insert_one({"rank": index}) for index in range(20)]

        store.remove_member("d0")
        assert "d0" not in store.members
        for doc_id in ids:
            owners = set(store.ring.owners(f"models/{doc_id}"))
            assert "d0" not in owners
            assert holders(store, "models", doc_id) == owners
        assert collection.count() == 20
