"""Failure detector: streaks, circuit breaker, flap damping, probes."""

import pytest

from repro.cluster import FailureDetector, HealthMonitor
from repro.cluster.health import STATE_DOWN, STATE_HEALTHY, STATE_SUSPECT


class ManualClock:
    """A clock tests advance explicitly (FakeClock ticks per call)."""

    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def perf(self) -> float:
        return self.t

    def now(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.t += seconds

    def advance(self, seconds: float) -> None:
        self.t += seconds


def make_detector(**kwargs) -> tuple[FailureDetector, ManualClock]:
    clock = ManualClock()
    detector = FailureDetector(
        members=("m0", "m1"),
        failure_threshold=3,
        recovery_threshold=2,
        breaker_cooldown_s=1.0,
        max_cooldown_s=8.0,
        flap_window_s=60.0,
        clock=clock,
        **kwargs,
    )
    return detector, clock


class TestStateMachine:
    def test_members_start_healthy(self):
        detector, _ = make_detector()
        assert detector.state("m0") == STATE_HEALTHY
        assert detector.is_healthy("m0")
        assert detector.down_members() == []

    def test_trips_after_failure_threshold(self):
        detector, _ = make_detector()
        detector.record_failure("m0")
        detector.record_failure("m0")
        assert detector.state("m0") != STATE_DOWN
        detector.record_failure("m0")
        assert detector.state("m0") == STATE_DOWN
        assert detector.down_members() == ["m0"]
        assert detector.state("m1") == STATE_HEALTHY

    def test_flapping_member_still_trips(self):
        """Interleaved successes must not reset the failure streak —
        only a full recovery (recovery_threshold consecutive successes
        from SUSPECT) does, so an alternating member eventually trips."""
        detector, _ = make_detector()
        for _ in range(2):
            detector.record_failure("m0")
            detector.record_success("m0")
        detector.record_failure("m0")  # third failure overall: trips
        assert detector.state("m0") == STATE_DOWN

    def test_recovery_needs_consecutive_successes(self):
        detector, clock = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        clock.advance(2.0)
        assert detector.allow("m0")  # half-open trial
        detector.record_success("m0")
        assert detector.state("m0") == STATE_SUSPECT
        detector.record_success("m0")
        assert detector.state("m0") == STATE_HEALTHY
        assert detector.is_healthy("m0")

    def test_suspect_failure_retrips_immediately(self):
        detector, clock = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        clock.advance(2.0)
        assert detector.allow("m0")
        detector.record_success("m0")  # SUSPECT
        detector.record_failure("m0")  # relapse: straight back DOWN
        assert detector.state("m0") == STATE_DOWN


class TestBreaker:
    def test_open_breaker_fast_fails(self):
        detector, _ = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        assert not detector.allow("m0")
        assert not detector.allow("m0")
        assert detector.allow("m1")

    def test_half_open_admits_exactly_one_trial(self):
        detector, clock = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        clock.advance(1.5)  # past the 1.0s cooldown
        assert detector.allow("m0")      # the single half-open trial
        assert not detector.allow("m0")  # concurrent callers keep failing fast
        detector.record_failure("m0")    # trial failed: re-open
        assert not detector.allow("m0")

    def test_flap_damping_doubles_cooldown(self):
        detector, clock = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        first_cooldown = detector.snapshot()["m0"]["cooldown_s"]
        clock.advance(first_cooldown + 0.1)
        assert detector.allow("m0")
        detector.record_failure("m0")  # re-trip inside the flap window
        second_cooldown = detector.snapshot()["m0"]["cooldown_s"]
        assert second_cooldown == pytest.approx(2 * first_cooldown)

    def test_cooldown_capped_at_max(self):
        detector, clock = make_detector()
        for _ in range(3):
            detector.record_failure("m0")
        for _ in range(8):  # keep failing every half-open trial
            clock.advance(detector.snapshot()["m0"]["cooldown_s"] + 0.1)
            if detector.allow("m0"):
                detector.record_failure("m0")
        assert detector.snapshot()["m0"]["cooldown_s"] <= 8.0

    def test_snapshot_shape(self):
        detector, _ = make_detector()
        detector.record_failure("m0")
        snap = detector.snapshot()
        assert set(snap) == {"m0", "m1"}
        entry = snap["m0"]
        assert entry["state"] == STATE_SUSPECT  # first failure: suspect
        assert entry["failure_streak"] == 1
        assert {"success_streak", "breaker_trips",
                "breaker_open_for_s", "cooldown_s"} <= set(entry)

    def test_unknown_member_is_created_healthy(self):
        detector, _ = make_detector()
        assert detector.allow("m9")
        assert "m9" in detector.members()


class TestHealthMonitor:
    def test_probe_failures_feed_the_detector(self):
        detector, _ = make_detector()
        calls = {"m0": 0, "m1": 0}

        def bad_probe():
            calls["m0"] += 1
            raise OSError("dead")

        def good_probe():
            calls["m1"] += 1
            return True

        monitor = HealthMonitor(detector, {"m0": bad_probe, "m1": good_probe})
        for _ in range(3):
            monitor.probe_once()
        assert detector.state("m0") == STATE_DOWN
        assert detector.state("m1") == STATE_HEALTHY
        assert monitor.stats["probe_failures"] >= 3
        assert calls["m1"] == 3

    def test_probes_skip_open_breakers(self):
        detector, _ = make_detector()
        probes = {"m0": lambda: (_ for _ in ()).throw(OSError("down"))}
        monitor = HealthMonitor(detector, probes)
        for _ in range(6):
            monitor.probe_once()
        # once the breaker opened, probe rounds skip instead of hammering
        assert monitor.stats["skipped_open"] >= 1

    def test_probe_recovers_member(self):
        detector, clock = make_detector()
        healthy = {"up": False}

        def probe():
            if not healthy["up"]:
                raise OSError("down")
            return True

        monitor = HealthMonitor(detector, {"m0": probe})
        for _ in range(3):
            monitor.probe_once()
        assert detector.state("m0") == STATE_DOWN
        healthy["up"] = True
        for _ in range(6):
            clock.advance(detector.snapshot()["m0"]["cooldown_s"] + 0.1)
            monitor.probe_once()
        assert detector.state("m0") == STATE_HEALTHY
