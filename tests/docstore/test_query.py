"""Query-language matching semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore import QueryError, matches

DOC = {
    "name": "resnet18",
    "params": 11_689_512,
    "tags": ["vision", "residual"],
    "meta": {"relation": "partial", "depth": 3},
    "base": None,
}


class TestEquality:
    def test_plain_equality(self):
        assert matches(DOC, {"name": "resnet18"})
        assert not matches(DOC, {"name": "resnet50"})

    def test_nested_dotted_path(self):
        assert matches(DOC, {"meta.relation": "partial"})
        assert not matches(DOC, {"meta.relation": "full"})

    def test_missing_path_matches_none(self):
        assert matches(DOC, {"nonexistent": None})
        assert matches(DOC, {"base": None})
        assert not matches(DOC, {"nonexistent": 5})

    def test_array_membership(self):
        assert matches(DOC, {"tags": "vision"})
        assert not matches(DOC, {"tags": "nlp"})

    def test_array_index_path(self):
        assert matches(DOC, {"tags.0": "vision"})
        assert not matches(DOC, {"tags.5": "vision"})

    def test_empty_query_matches_everything(self):
        assert matches(DOC, {})


class TestOperators:
    def test_eq_ne(self):
        assert matches(DOC, {"params": {"$eq": 11_689_512}})
        assert matches(DOC, {"params": {"$ne": 0}})
        assert matches(DOC, {"nonexistent": {"$ne": 5}})

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("$gt", 10_000_000, True),
            ("$gt", 20_000_000, False),
            ("$gte", 11_689_512, True),
            ("$lt", 20_000_000, True),
            ("$lte", 11_689_511, False),
        ],
    )
    def test_comparisons(self, op, value, expected):
        assert matches(DOC, {"params": {op: value}}) is expected

    def test_comparison_with_missing_field_false(self):
        assert not matches(DOC, {"nonexistent": {"$gt": 1}})

    def test_comparison_type_mismatch_false(self):
        assert not matches(DOC, {"name": {"$gt": 5}})

    def test_in_nin(self):
        assert matches(DOC, {"name": {"$in": ["resnet18", "resnet50"]}})
        assert matches(DOC, {"name": {"$nin": ["mobilenetv2"]}})
        assert matches(DOC, {"nonexistent": {"$nin": ["x"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"name": {"$in": "resnet18"}})

    def test_exists(self):
        assert matches(DOC, {"name": {"$exists": True}})
        assert matches(DOC, {"nonexistent": {"$exists": False}})
        assert not matches(DOC, {"name": {"$exists": False}})

    def test_not(self):
        assert matches(DOC, {"params": {"$not": {"$lt": 1_000}}})
        assert not matches(DOC, {"params": {"$not": {"$gt": 1_000}}})

    def test_combined_range(self):
        assert matches(DOC, {"params": {"$gt": 1, "$lt": 10**9}})

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            matches(DOC, {"params": {"$regex": ".*"}})


class TestLogical:
    def test_and(self):
        assert matches(DOC, {"$and": [{"name": "resnet18"}, {"meta.depth": 3}]})
        assert not matches(DOC, {"$and": [{"name": "resnet18"}, {"meta.depth": 4}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"name": "wrong"}, {"meta.depth": 3}]})
        assert not matches(DOC, {"$or": [{"name": "wrong"}, {"meta.depth": 4}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"name": "wrong"}, {"meta.depth": 4}]})

    def test_implicit_and_of_fields(self):
        assert matches(DOC, {"name": "resnet18", "meta.depth": 3})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$xor": []})

    def test_non_dict_query_rejected(self):
        with pytest.raises(QueryError):
            matches(DOC, ["name"])


@settings(max_examples=50, deadline=None)
@given(st.integers(-100, 100), st.integers(-100, 100))
def test_property_gt_lt_partition(value, bound):
    """For any scalar, exactly one of $lt / $eq / $gt holds."""
    doc = {"v": value}
    outcomes = [
        matches(doc, {"v": {"$lt": bound}}),
        matches(doc, {"v": {"$eq": bound}}),
        matches(doc, {"v": {"$gt": bound}}),
    ]
    assert sum(outcomes) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-10, 10), max_size=5), st.integers(-10, 10))
def test_property_in_matches_membership(options, value):
    assert matches({"v": value}, {"v": {"$in": options}}) == (value in options)
