"""Pipelined docstore protocol: id matching, batched ops, paging."""

import json
import socket
import threading

import pytest

from repro.docstore import (
    DocumentStore,
    DocumentStoreClient,
    DocumentStoreServer,
    NotFoundError,
    RemoteStoreError,
)
from repro.docstore.client import TransientRemoteError


@pytest.fixture
def served_store():
    store = DocumentStore()
    with DocumentStoreServer(store, port=0) as server:
        with DocumentStoreClient(server.host, server.port) as client:
            yield store, client


@pytest.fixture
def rogue_server():
    """A fake server that answers every request with a wrong response id."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def serve():
        conn, _ = listener.accept()
        reader = conn.makefile("rb")
        try:
            while reader.readline():
                payload = {"id": 999_999, "ok": True, "result": None}
                conn.sendall((json.dumps(payload) + "\n").encode())
        except OSError:
            pass
        finally:
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    yield host, port
    listener.close()


class TestResponseIdMatching:
    def test_mismatched_response_id_raises(self, rogue_server):
        """Regression: a stale/reordered response must never be attributed
        to the wrong request — the client verifies every response id."""
        host, port = rogue_server
        client = DocumentStoreClient(host, port)
        with pytest.raises(RemoteStoreError, match="out of sync"):
            client.request("models", "count")

    def test_mismatch_poisons_the_connection(self, rogue_server):
        host, port = rogue_server
        client = DocumentStoreClient(host, port)
        with pytest.raises(RemoteStoreError):
            client.request("models", "count")
        # the desynchronized connection must not return to the pool
        assert client._idle == []

    def test_ids_strictly_increase_within_a_connection(self, served_store):
        _, client = served_store
        coll = client["m"]
        for index in range(5):
            coll.insert_one({"i": index})
        # all five requests reused the single pooled connection
        assert len(client._idle) == 1
        assert client._idle[0].next_id == 5


class TestRequestMany:
    def test_results_come_back_in_request_order(self, served_store):
        _, client = served_store
        ids = client["m"].insert_many([{"i": i} for i in range(10)])
        results = client.request_many(
            "m", [("get", {"doc_id": doc_id}) for doc_id in reversed(ids)]
        )
        assert [doc["i"] for doc in results] == list(range(9, -1, -1))

    def test_error_mid_batch_keeps_the_stream_in_sync(self, served_store):
        _, client = served_store
        coll = client["m"]
        good = coll.insert_one({"i": 1})
        with pytest.raises(NotFoundError):
            client.request_many(
                "m",
                [
                    ("get", {"doc_id": good}),
                    ("get", {"doc_id": "missing-id"}),
                    ("get", {"doc_id": good}),
                ],
            )
        # an application-level error is a clean response, not a transport
        # failure: the connection survives and later requests still work
        assert coll.get(good)["i"] == 1
        assert len(client._idle) == 1

    def test_empty_batch(self, served_store):
        _, client = served_store
        assert client.request_many("m", []) == []

    def test_concurrent_batches_from_many_threads(self, served_store):
        _, client = served_store
        ids = client["m"].insert_many([{"i": i} for i in range(20)])
        errors = []

        def worker():
            try:
                for _ in range(5):
                    docs = client.request_many(
                        "m", [("get", {"doc_id": doc_id}) for doc_id in ids]
                    )
                    assert [d["i"] for d in docs] == list(range(20))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestSmallPipelineWindows:
    def test_seven_ops_over_depth_two_windows(self):
        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            with DocumentStoreClient(
                server.host, server.port, pipeline_depth=2
            ) as client:
                ids = client["m"].insert_many([{"i": i} for i in range(7)])
                docs = client.request_many(
                    "m", [("get", {"doc_id": doc_id}) for doc_id in ids]
                )
                assert [d["i"] for d in docs] == list(range(7))

    def test_invalid_depth_rejected(self):
        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            with pytest.raises(ValueError):
                DocumentStoreClient(server.host, server.port, pipeline_depth=0)
            with pytest.raises(ValueError):
                DocumentStoreClient(server.host, server.port, max_connections=0)


class TestGetMany:
    def test_order_matches_request_and_missing_are_skipped(self, served_store):
        _, client = served_store
        coll = client["m"]
        ids = coll.insert_many([{"i": i} for i in range(4)])
        wanted = [ids[3], "missing", ids[0], ids[2]]
        docs = coll.get_many(wanted)
        assert [d["i"] for d in docs] == [3, 0, 2]

    def test_empty_and_duplicate_ids(self, served_store):
        _, client = served_store
        coll = client["m"]
        assert coll.get_many([]) == []
        doc_id = coll.insert_one({"i": 7})
        docs = coll.get_many([doc_id, doc_id])
        assert [d["i"] for d in docs] == [7, 7]

    def test_engine_collection_get_many(self):
        coll = DocumentStore().collection("m")
        ids = [coll.insert_one({"i": i}) for i in range(3)]
        docs = coll.get_many([ids[2], ids[0]])
        assert [d["i"] for d in docs] == [2, 0]
        # returned documents are copies, not aliases into the store
        docs[0]["i"] = 99
        assert coll.get(ids[2])["i"] == 2


class TestFindPaging:
    def test_find_with_skip(self, served_store):
        _, client = served_store
        coll = client["m"]
        coll.insert_many([{"i": i} for i in range(10)])
        page = coll.find({}, sort=[("i", 1)], skip=4, limit=3)
        assert [d["i"] for d in page] == [4, 5, 6]

    def test_engine_skip_validation(self):
        coll = DocumentStore().collection("m")
        with pytest.raises(ValueError):
            coll.find({}, skip=-1)

    def test_find_pages_streams_everything_once(self, served_store):
        _, client = served_store
        coll = client["m"]
        coll.insert_many([{"i": i} for i in range(23)])
        seen = [doc["i"] for doc in coll.find_pages({}, sort=[("i", 1)], page_size=5)]
        assert seen == list(range(23))

    def test_find_pages_invalid_page_size(self, served_store):
        _, client = served_store
        with pytest.raises(ValueError):
            next(client["m"].find_pages({}, page_size=0))


class TestPoolBehaviour:
    def test_dead_endpoint_fails_fast_and_typed(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        with pytest.raises(TransientRemoteError):
            DocumentStoreClient("127.0.0.1", port, timeout=0.5)
