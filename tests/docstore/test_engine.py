"""Document store engine: CRUD, persistence, concurrency."""

import threading

import pytest

from repro.docstore import (
    DocumentStore,
    DuplicateKeyError,
    NotFoundError,
)


class TestInsertAndGet:
    def test_insert_generates_id(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        doc_id = coll.insert_one({"name": "m"})
        assert coll.get(doc_id)["name"] == "m"

    def test_insert_honors_explicit_id(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        assert coll.insert_one({"_id": "custom-id", "x": 1}) == "custom-id"

    def test_duplicate_id_rejected(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        coll.insert_one({"_id": "a"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"_id": "a"})

    def test_get_missing_raises(self, mem_doc_store):
        with pytest.raises(NotFoundError):
            mem_doc_store.collection("models").get("nope")

    def test_returned_documents_are_isolated_copies(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        doc_id = coll.insert_one({"nested": {"a": 1}})
        fetched = coll.get(doc_id)
        fetched["nested"]["a"] = 99
        assert coll.get(doc_id)["nested"]["a"] == 1

    def test_insert_many(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        ids = coll.insert_many([{"i": i} for i in range(5)])
        assert len(set(ids)) == 5
        assert coll.count() == 5


class TestFind:
    @pytest.fixture
    def filled(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        for i in range(10):
            coll.insert_one({"i": i, "even": i % 2 == 0})
        return coll

    def test_find_all(self, filled):
        assert len(filled.find()) == 10

    def test_find_with_query(self, filled):
        assert len(filled.find({"even": True})) == 5

    def test_find_one_returns_none_when_absent(self, filled):
        assert filled.find_one({"i": 99}) is None

    def test_find_one_returns_match(self, filled):
        assert filled.find_one({"i": 3})["i"] == 3

    def test_count_with_query(self, filled):
        assert filled.count({"i": {"$gte": 7}}) == 3


class TestUpdateDelete:
    def test_replace_one(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        doc_id = coll.insert_one({"v": 1})
        coll.replace_one(doc_id, {"v": 2})
        assert coll.get(doc_id)["v"] == 2

    def test_replace_missing_raises(self, mem_doc_store):
        with pytest.raises(NotFoundError):
            mem_doc_store.collection("models").replace_one("nope", {"v": 1})

    def test_update_one_sets_fields(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        doc_id = coll.insert_one({"v": 1, "keep": "yes"})
        assert coll.update_one({"v": 1}, {"v": 2})
        updated = coll.get(doc_id)
        assert updated["v"] == 2 and updated["keep"] == "yes"

    def test_update_one_no_match_returns_false(self, mem_doc_store):
        assert not mem_doc_store.collection("m").update_one({"v": 1}, {"v": 2})

    def test_delete_one(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        doc_id = coll.insert_one({"v": 1})
        assert coll.delete_one(doc_id)
        assert not coll.delete_one(doc_id)
        assert coll.count() == 0

    def test_delete_many(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        coll.insert_many([{"i": i} for i in range(6)])
        assert coll.delete_many({"i": {"$lt": 4}}) == 4
        assert coll.count() == 2


class TestPersistence:
    def test_documents_survive_reopen(self, tmp_path):
        store = DocumentStore(tmp_path / "db")
        doc_id = store.collection("models").insert_one({"name": "persisted"})
        reopened = DocumentStore(tmp_path / "db")
        assert reopened.collection("models").get(doc_id)["name"] == "persisted"

    def test_collections_discovered_on_open(self, tmp_path):
        store = DocumentStore(tmp_path / "db")
        store.collection("a").insert_one({"x": 1})
        store.collection("b").insert_one({"x": 2})
        reopened = DocumentStore(tmp_path / "db")
        assert reopened.collection_names() == ["a", "b"]

    def test_deletes_persisted(self, tmp_path):
        store = DocumentStore(tmp_path / "db")
        doc_id = store.collection("m").insert_one({"x": 1})
        store.collection("m").delete_one(doc_id)
        reopened = DocumentStore(tmp_path / "db")
        assert reopened.collection("m").count() == 0

    def test_drop_collection_removes_file(self, tmp_path):
        store = DocumentStore(tmp_path / "db")
        store.collection("gone").insert_one({"x": 1})
        store.drop_collection("gone")
        assert not (tmp_path / "db" / "gone.jsonl").exists()

    def test_in_memory_store_has_no_files(self, mem_doc_store, tmp_path):
        mem_doc_store.collection("m").insert_one({"x": 1})
        assert not list(tmp_path.iterdir())


class TestStorageAccounting:
    def test_storage_bytes_grows_with_documents(self, mem_doc_store):
        coll = mem_doc_store.collection("m")
        assert mem_doc_store.storage_bytes() == 0
        coll.insert_one({"payload": "x" * 100})
        first = mem_doc_store.storage_bytes()
        assert first > 100
        coll.insert_one({"payload": "y" * 100})
        assert mem_doc_store.storage_bytes() > first


class TestConcurrency:
    def test_parallel_inserts_all_land(self, mem_doc_store):
        coll = mem_doc_store.collection("m")

        def insert_many(offset):
            for i in range(50):
                coll.insert_one({"n": offset + i})

        threads = [threading.Thread(target=insert_many, args=(k * 50,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert coll.count() == 200


class TestSortLimit:
    @pytest.fixture
    def filled(self, mem_doc_store):
        coll = mem_doc_store.collection("models")
        for i, name in enumerate(["delta", "alpha", "charlie", "bravo"]):
            coll.insert_one({"name": name, "rank": 3 - i, "meta": {"n": i}})
        return coll

    def test_sort_ascending(self, filled):
        names = [d["name"] for d in filled.find(sort=[["name", 1]])]
        assert names == ["alpha", "bravo", "charlie", "delta"]

    def test_sort_descending(self, filled):
        ranks = [d["rank"] for d in filled.find(sort=[["rank", -1]])]
        assert ranks == [3, 2, 1, 0]

    def test_sort_by_nested_path(self, filled):
        ns = [d["meta"]["n"] for d in filled.find(sort=[["meta.n", 1]])]
        assert ns == [0, 1, 2, 3]

    def test_multi_key_sort(self, mem_doc_store):
        coll = mem_doc_store.collection("m")
        coll.insert_many(
            [{"g": 1, "v": 2}, {"g": 0, "v": 9}, {"g": 1, "v": 1}, {"g": 0, "v": 3}]
        )
        ordered = [(d["g"], d["v"]) for d in coll.find(sort=[["g", 1], ["v", 1]])]
        assert ordered == [(0, 3), (0, 9), (1, 1), (1, 2)]

    def test_missing_fields_sort_first(self, mem_doc_store):
        coll = mem_doc_store.collection("m")
        coll.insert_many([{"v": 1}, {"other": True}])
        ordered = coll.find(sort=[["v", 1]])
        assert "v" not in ordered[0]

    def test_limit(self, filled):
        assert len(filled.find(limit=2)) == 2
        assert filled.find(limit=0) == []

    def test_sort_with_limit_takes_smallest(self, filled):
        names = [d["name"] for d in filled.find(sort=[["name", 1]], limit=2)]
        assert names == ["alpha", "bravo"]

    def test_invalid_direction(self, filled):
        with pytest.raises(ValueError):
            filled.find(sort=[["name", 2]])

    def test_invalid_limit(self, filled):
        with pytest.raises(ValueError):
            filled.find(limit=-1)
