"""ObjectId generation and document validation."""

import pytest

from repro.docstore import DocumentError, ObjectId, new_object_id, validate_document


class TestObjectId:
    def test_format(self):
        value = new_object_id()
        assert len(value) == 24
        assert all(c in "0123456789abcdef" for c in value)

    def test_uniqueness(self):
        ids = {new_object_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_round_trip_and_equality(self):
        oid = ObjectId()
        assert ObjectId(str(oid)) == oid
        assert hash(ObjectId(str(oid))) == hash(oid)

    def test_equality_with_string(self):
        oid = ObjectId()
        assert oid == str(oid)

    @pytest.mark.parametrize("bad", ["", "short", "g" * 24, "A" * 24])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(DocumentError):
            ObjectId(bad)


class TestValidation:
    def test_valid_document_passes_and_copies(self):
        original = {"a": 1, "nested": {"b": [1, 2, {"c": None}]}}
        validated = validate_document(original)
        assert validated == original
        validated["nested"]["b"].append(3)
        assert len(original["nested"]["b"]) == 3  # original untouched

    def test_non_dict_rejected(self):
        with pytest.raises(DocumentError):
            validate_document([1, 2, 3])

    def test_dollar_fields_rejected(self):
        with pytest.raises(DocumentError, match=r"\$"):
            validate_document({"$set": {"a": 1}})

    def test_nested_dollar_fields_rejected(self):
        with pytest.raises(DocumentError):
            validate_document({"ok": {"$bad": 1}})

    def test_non_string_keys_rejected(self):
        with pytest.raises(DocumentError):
            validate_document({1: "value"})

    def test_non_json_values_rejected(self):
        with pytest.raises(DocumentError, match="non-JSON"):
            validate_document({"f": object()})

    def test_tuples_normalized_to_lists(self):
        validated = validate_document({"t": (1, 2)})
        assert validated["t"] == [1, 2]

    def test_large_ints_survive(self):
        big = 2**100
        assert validate_document({"n": big})["n"] == big
