"""TCP document-store server and client."""

import threading

import pytest

from repro.docstore import (
    DocumentStore,
    DocumentStoreClient,
    DocumentStoreServer,
    DuplicateKeyError,
    NotFoundError,
)


@pytest.fixture
def served_store():
    store = DocumentStore()
    with DocumentStoreServer(store, port=0) as server:
        with DocumentStoreClient(server.host, server.port) as client:
            yield store, client


class TestBasicOps:
    def test_insert_and_get(self, served_store):
        _, client = served_store
        coll = client.collection("models")
        doc_id = coll.insert_one({"name": "remote"})
        assert coll.get(doc_id)["name"] == "remote"

    def test_writes_visible_in_backing_store(self, served_store):
        store, client = served_store
        doc_id = client["models"].insert_one({"x": 1})
        assert store.collection("models").get(doc_id)["x"] == 1

    def test_find_and_count(self, served_store):
        _, client = served_store
        coll = client["m"]
        coll.insert_many([{"i": i} for i in range(4)])
        assert coll.count() == 4
        assert len(coll.find({"i": {"$gte": 2}})) == 2
        assert coll.find_one({"i": 3})["i"] == 3

    def test_update_and_delete(self, served_store):
        _, client = served_store
        coll = client["m"]
        doc_id = coll.insert_one({"v": 1})
        assert coll.update_one({"v": 1}, {"v": 2})
        coll.replace_one(doc_id, {"v": 3})
        assert coll.get(doc_id)["v"] == 3
        assert coll.delete_one(doc_id)
        assert coll.delete_many({}) == 0

    def test_storage_bytes(self, served_store):
        _, client = served_store
        client["m"].insert_one({"payload": "x" * 50})
        assert client["m"].storage_bytes() > 50


class TestErrorMapping:
    def test_not_found_maps_to_exception(self, served_store):
        _, client = served_store
        with pytest.raises(NotFoundError):
            client["m"].get("missing")

    def test_duplicate_maps_to_exception(self, served_store):
        _, client = served_store
        client["m"].insert_one({"_id": "dup"})
        with pytest.raises(DuplicateKeyError):
            client["m"].insert_one({"_id": "dup"})

    def test_connection_survives_errors(self, served_store):
        _, client = served_store
        with pytest.raises(NotFoundError):
            client["m"].get("missing")
        assert client["m"].insert_one({"after": "error"})


class TestConcurrentClients:
    def test_multiple_clients_share_state(self):
        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            clients = [
                DocumentStoreClient(server.host, server.port) for _ in range(4)
            ]
            try:
                errors = []

                def work(client, offset):
                    try:
                        for i in range(25):
                            client["m"].insert_one({"n": offset + i})
                    except Exception as exc:  # surfaced below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=work, args=(c, k * 25))
                    for k, c in enumerate(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert not errors
                assert clients[0]["m"].count() == 100
            finally:
                for client in clients:
                    client.close()


class TestRemoteSortLimit:
    def test_sort_and_limit_over_tcp(self, served_store):
        _, client = served_store
        coll = client["models"]
        coll.insert_many([{"i": i} for i in (3, 1, 2)])
        ordered = coll.find(sort=[["i", -1]], limit=2)
        assert [d["i"] for d in ordered] == [3, 2]


class TestServerRobustness:
    def test_server_survives_abrupt_client_disconnect(self):
        """A client dying mid-session must not take the handler thread down."""
        import socket

        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            # half a request line, then a hard close
            raw = socket.create_connection((server.host, server.port), timeout=2)
            raw.sendall(b'{"id": 1, "collection": "m", "op"')
            raw.close()
            # a request sent and abandoned before reading the response
            raw = socket.create_connection((server.host, server.port), timeout=2)
            raw.sendall(
                b'{"id": 1, "collection": "m", "op": "insert_one",'
                b' "args": {"document": {"x": 1}}}\n'
            )
            raw.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),  # RST on close
            )
            raw.close()
            # the server must still accept and serve a well-behaved client
            with DocumentStoreClient(server.host, server.port) as client:
                doc_id = client["m"].insert_one({"survived": True})
                assert client["m"].get(doc_id)["survived"] is True

    def test_connect_to_dead_port_is_typed_and_retryable(self):
        import socket

        from repro.docstore.client import TransientRemoteError
        from repro.errors import TransientStoreError

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()  # nobody listens here any more
        with pytest.raises(TransientRemoteError) as excinfo:
            DocumentStoreClient("127.0.0.1", dead_port, connect_timeout=0.5)
        assert isinstance(excinfo.value, TransientStoreError)  # retryable

    def test_client_retries_through_injected_outages(self):
        from repro.faults import FaultInjector
        from repro.retry import RetryPolicy

        faults = FaultInjector(seed=2, outage_rate=0.4, max_consecutive_failures=2)
        retry = RetryPolicy(max_attempts=5, base_delay_s=0.0, sleep=lambda s: None)
        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            with DocumentStoreClient(
                server.host, server.port, retry=retry, faults=faults
            ) as client:
                coll = client["models"]
                ids = [coll.insert_one({"i": i}) for i in range(20)]
                for i, doc_id in enumerate(ids):
                    assert coll.get(doc_id)["i"] == i
        assert faults.stats["outages"] > 0
        assert retry.retries_taken >= faults.stats["outages"]

    def test_client_without_retry_surfaces_typed_outage(self):
        from repro.errors import TransientStoreError
        from repro.faults import FaultInjector

        faults = FaultInjector(seed=0, outage_rate=1.0)
        store = DocumentStore()
        with DocumentStoreServer(store, port=0) as server:
            with DocumentStoreClient(
                server.host, server.port, faults=faults
            ) as client:
                with pytest.raises(TransientStoreError):
                    client["m"].count()
