"""Cross-module integration: MMlib over the TCP document store, network
file stores, and cross-"machine" recovery — the paper's deployment shape."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.distsim import SharedStores
from repro.docstore import DocumentStore, DocumentStoreClient, DocumentStoreServer
from repro.filestore import FileStore, NetworkModel, SimulatedNetworkFileStore
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.test_integration", "build_probe_model", {"num_classes": 10}
    )


class TestOverTcpDocumentStore:
    """Save on one 'machine', recover on another, documents via TCP."""

    def test_save_and_recover_through_server(self, tmp_path):
        backing = DocumentStore(tmp_path / "docs")
        files = FileStore(tmp_path / "files")
        model = make_tiny_cnn(seed=8)
        with DocumentStoreServer(backing, port=0) as server:
            with DocumentStoreClient(server.host, server.port) as node_client:
                node_service = BaselineSaveService(node_client, files)
                model_id = node_service.save_model(ModelSaveInfo(model, tiny_arch()))
            with DocumentStoreClient(server.host, server.port) as server_client:
                server_service = BaselineSaveService(server_client, files)
                recovered = server_service.recover_model(model_id)
        expected = model.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_param_update_chain_across_clients(self, tmp_path):
        backing = DocumentStore()
        files = FileStore(tmp_path / "files")
        base = make_tiny_cnn(seed=1)
        derived = make_tiny_cnn(seed=2)
        with DocumentStoreServer(backing, port=0) as server:
            with DocumentStoreClient(server.host, server.port) as c1:
                service1 = ParameterUpdateSaveService(c1, files)
                base_id = service1.save_model(ModelSaveInfo(base, tiny_arch()))
            with DocumentStoreClient(server.host, server.port) as c2:
                service2 = ParameterUpdateSaveService(c2, files)
                derived_id = service2.save_model(
                    ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
                )
                recovered = service2.recover_model(derived_id)
        assert recovered.verified is True


class TestSeparateServiceInstances:
    """A node saves; a *different* service instance (the server) recovers —
    all state flows through the shared stores, never through memory."""

    def test_cross_instance_recovery(self, tmp_path):
        stores = SharedStores.at(tmp_path)
        node = BaselineSaveService(stores.documents, stores.files)
        server = BaselineSaveService(stores.documents, stores.files)
        model = make_tiny_cnn(seed=3)
        model_id = node.save_model(ModelSaveInfo(model, tiny_arch()))
        recovered = server.recover_model(model_id)
        assert recovered.verified is True


class TestOverSimulatedNetwork:
    def test_transfer_accounting_covers_save_and_recover(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=100e6, latency_s=0.001)
        files = SimulatedNetworkFileStore(tmp_path / "files", link, sleep=False)
        service = BaselineSaveService(DocumentStore(), files)
        model = make_tiny_cnn()
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        saved_cost = files.simulated_seconds
        assert saved_cost > 0
        service.recover_model(model_id)
        assert files.simulated_seconds > saved_cost
        parameter_bytes = sum(v.nbytes for v in model.state_dict().values())
        assert files.bytes_sent > parameter_bytes

    def test_slow_link_costs_more(self, tmp_path):
        model = make_tiny_cnn()
        costs = {}
        for name, bandwidth in (("fast", 1e9), ("slow", 1e6)):
            files = SimulatedNetworkFileStore(
                tmp_path / name, NetworkModel(bandwidth), sleep=False
            )
            service = BaselineSaveService(DocumentStore(), files)
            service.save_model(ModelSaveInfo(model, tiny_arch()))
            costs[name] = files.simulated_seconds
        assert costs["slow"] > 100 * costs["fast"]


class TestApproachInterchangeability:
    """Any service can recover chains saved by the others — recovery
    dispatches on document contents (shared engine)."""

    def test_baseline_service_recovers_pua_chain(self, tmp_path):
        stores = SharedStores.at(tmp_path)
        pua = ParameterUpdateSaveService(stores.documents, stores.files)
        base = make_tiny_cnn(seed=1)
        base_id = pua.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = make_tiny_cnn(seed=2)
        derived_id = pua.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )
        ba = BaselineSaveService(stores.documents, stores.files)
        recovered = ba.recover_model(derived_id)
        expected = derived.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)
