"""Synthetic text corpora and NLP-shaped training runs."""

import numpy as np
import pytest

from repro.workloads import SyntheticTextCorpus, generate_text_corpus
from repro.workloads.relations import TrainingRun


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    return generate_text_corpus(
        tmp_path_factory.mktemp("text"),
        num_documents=64,
        sequence_length=8,
        vocab_size=256,
        num_classes=4,
    )


class TestGeneration:
    def test_deterministic(self, tmp_path):
        a = generate_text_corpus(tmp_path / "a", num_documents=16, vocab_size=64)
        b = generate_text_corpus(tmp_path / "b", num_documents=16, vocab_size=64)
        assert (a / "tokens.npy").read_bytes() == (b / "tokens.npy").read_bytes()

    def test_reuses_existing(self, corpus_root):
        again = generate_text_corpus(
            corpus_root.parent,
            num_documents=64,
            sequence_length=8,
            vocab_size=256,
            num_classes=4,
        )
        assert again == corpus_root

    def test_corpus_is_small(self, corpus_root):
        """The §4.7 NLP regime: datasets far smaller than image dumps."""
        total = sum(p.stat().st_size for p in corpus_root.rglob("*") if p.is_file())
        assert total < 100_000


class TestCorpusDataset:
    def test_item_format(self, corpus_root):
        dataset = SyntheticTextCorpus(corpus_root)
        tokens, label = dataset[0]
        assert tokens.shape == (8,)
        assert tokens.dtype == np.int64
        assert 0 <= int(label) < 4
        assert len(dataset) == 64

    def test_vocab_clamp(self, corpus_root):
        dataset = SyntheticTextCorpus(corpus_root, vocab_size=16)
        tokens, _ = dataset[3]
        assert tokens.max() < 16

    def test_out_of_range(self, corpus_root):
        with pytest.raises(IndexError):
            SyntheticTextCorpus(corpus_root)[64]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SyntheticTextCorpus(tmp_path)


class TestTextTrainingRun:
    def test_text_run_replays_bitwise(self, corpus_root, mem_doc_store, file_store, tmp_path):
        """Full MPA loop over a text workload: save provenance, replay."""
        from repro.core import (
            ArchitectureRef,
            ModelSaveInfo,
            ProvenanceSaveService,
        )
        from repro.nn.models import text_classifier

        service = ProvenanceSaveService(
            mem_doc_store, file_store, scratch_dir=tmp_path / "scratch"
        )
        import repro.nn as nn

        nn.manual_seed(0)
        base = text_classifier(vocab_size=256, embedding_dim=8, hidden_dim=8, num_classes=4)
        arch = ArchitectureRef.from_factory(
            "repro.nn.models",
            "text_classifier",
            {"vocab_size": 256, "embedding_dim": 8, "hidden_dim": 8, "num_classes": 4},
        )
        base_id = service.save_model(ModelSaveInfo(base, arch, use_case="U_1"))

        model = text_classifier(vocab_size=256, embedding_dim=8, hidden_dim=8, num_classes=4)
        model.load_state_dict(base.state_dict())
        run = TrainingRun(
            dataset_dir=corpus_root,
            number_epochs=1,
            number_batches=2,
            seed=11,
            batch_size=16,
            dataset_class="repro.workloads.text_data.SyntheticTextCorpus",
            dataset_kwargs={"vocab_size": 256},
        )
        run.execute(model)
        model_id = service.save_model(
            run.to_provenance_info(base_id, trained_model=model, use_case="U_3-1-1")
        )
        recovered = service.recover_model(model_id)
        assert recovered.verified is True
        expected = model.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)
