"""Synthetic evaluation datasets (Table 1 stand-ins)."""

import numpy as np
import pytest

from repro.workloads import (
    DATASET_SPECS,
    SyntheticImageFolder,
    dataset_on_disk_bytes,
    generate_dataset,
)


class TestSpecs:
    def test_paper_table1_entries_present(self):
        assert set(DATASET_SPECS) == {"inet_val", "minet_val", "cf512", "co512"}

    def test_paper_image_counts(self):
        assert DATASET_SPECS["inet_val"].num_images == 50_000
        assert DATASET_SPECS["minet_val"].num_images == 1_400
        assert DATASET_SPECS["cf512"].num_images == 512
        assert DATASET_SPECS["co512"].num_images == 512

    def test_paper_byte_sizes(self):
        assert DATASET_SPECS["inet_val"].paper_bytes == 6_300_000_000
        assert DATASET_SPECS["cf512"].paper_bytes == 94_300_000
        assert DATASET_SPECS["co512"].paper_bytes == 71_600_000

    def test_image_side_scales_with_target(self):
        spec = DATASET_SPECS["cf512"]
        assert spec.image_side(1 / 64) < spec.image_side(1 / 16)


class TestGeneration:
    # large enough that the 8px minimum image side does not distort sizes
    SCALE = 1 / 256

    def test_generated_size_tracks_scaled_target(self, tmp_path):
        spec = DATASET_SPECS["co512"]
        root = generate_dataset("co512", tmp_path, scale=self.SCALE)
        actual = dataset_on_disk_bytes(root)
        target = spec.paper_bytes * self.SCALE
        assert 0.5 * target < actual < 2.0 * target

    def test_size_ratio_between_datasets_preserved(self, tmp_path):
        cf = dataset_on_disk_bytes(generate_dataset("cf512", tmp_path, scale=self.SCALE))
        co = dataset_on_disk_bytes(generate_dataset("co512", tmp_path, scale=self.SCALE))
        paper_ratio = DATASET_SPECS["cf512"].paper_bytes / DATASET_SPECS["co512"].paper_bytes
        assert cf / co == pytest.approx(paper_ratio, rel=0.25)

    def test_generation_is_deterministic(self, tmp_path):
        a = generate_dataset("co512", tmp_path / "a", scale=self.SCALE)
        b = generate_dataset("co512", tmp_path / "b", scale=self.SCALE)
        for name in ("labels.npy", "images_0000.npy"):
            assert (a / name).read_bytes() == (b / name).read_bytes()

    def test_existing_dataset_reused(self, tmp_path):
        first = generate_dataset("co512", tmp_path, scale=self.SCALE)
        marker = first / "marker"
        marker.touch()
        second = generate_dataset("co512", tmp_path, scale=self.SCALE)
        assert second == first
        assert marker.exists()

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate_dataset("imagenet22k", tmp_path)


class TestSyntheticImageFolder:
    SCALE = 1 / 2048

    @pytest.fixture
    def root(self, tmp_path):
        return generate_dataset("co512", tmp_path, scale=self.SCALE)

    def test_length_matches_spec(self, root):
        assert len(SyntheticImageFolder(root)) == 512

    def test_item_format(self, root):
        image, label = SyntheticImageFolder(root, image_size=16)[0]
        assert image.shape == (3, 16, 16)
        assert image.dtype == np.float32
        assert 0.0 <= image.min() and image.max() <= 1.0
        assert 0 <= int(label) < 1000

    def test_label_remap(self, root):
        dataset = SyntheticImageFolder(root, num_classes=7)
        labels = {int(dataset[i][1]) for i in range(50)}
        assert labels <= set(range(7))

    def test_items_deterministic(self, root):
        a = SyntheticImageFolder(root, image_size=16)[5]
        b = SyntheticImageFolder(root, image_size=16)[5]
        assert np.array_equal(a[0], b[0]) and a[1] == b[1]

    def test_out_of_range_raises(self, root):
        dataset = SyntheticImageFolder(root)
        with pytest.raises(IndexError):
            dataset[512]

    def test_not_a_dataset_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SyntheticImageFolder(tmp_path)

    def test_metadata_properties(self, root):
        dataset = SyntheticImageFolder(root)
        assert dataset.name == "co512"
        assert dataset.num_classes == 1000
