"""Evaluation-flow chains: structure, caching, and relation semantics."""

import numpy as np
import pytest

from repro.workloads import (
    ChainConfig,
    PARTIALLY_UPDATED,
    build_chain,
    standard_use_cases,
)


def config(**overrides):
    defaults = dict(
        architecture="mobilenetv2",
        scale=0.125,
        num_classes=10,
        iterations=2,
        u2_epochs=1,
        u3_epochs=1,
        batches_per_epoch=1,
        dataset_scale=1 / 2048,
        image_size=16,
    )
    defaults.update(overrides)
    return ChainConfig(**defaults)


class TestUseCases:
    def test_standard_sequence(self):
        assert standard_use_cases(2) == [
            "U_1",
            "U_3-1-1",
            "U_3-1-2",
            "U_2",
            "U_3-2-1",
            "U_3-2-2",
        ]

    def test_ten_models_in_paper_flow(self):
        assert len(standard_use_cases(4)) == 10


class TestChainStructure:
    def test_figure6_base_relations(self, tmp_path):
        """U_3-1-* chain from U_1; U_2 from U_1; U_3-2-* chain from U_2."""
        chain = build_chain(tmp_path, config())
        by_use_case = {s.use_case: s for s in chain.steps}
        index = {s.use_case: i for i, s in enumerate(chain.steps)}
        assert by_use_case["U_1"].base_index is None
        assert by_use_case["U_3-1-1"].base_index == index["U_1"]
        assert by_use_case["U_3-1-2"].base_index == index["U_3-1-1"]
        assert by_use_case["U_2"].base_index == index["U_1"]
        assert by_use_case["U_3-2-1"].base_index == index["U_2"]
        assert by_use_case["U_3-2-2"].base_index == index["U_3-2-1"]

    def test_every_derived_step_has_training_record(self, tmp_path):
        chain = build_chain(tmp_path, config())
        for step in chain.steps:
            if step.use_case == "U_1":
                assert step.run is None
            else:
                assert step.run is not None
                assert step.run.rng_state is not None
                assert step.run.optimizer_state_bytes

    def test_derived_models_differ_from_base(self, tmp_path):
        chain = build_chain(tmp_path, config())
        u1 = chain.build_model("U_1").state_dict()
        derived = chain.build_model("U_3-1-1").state_dict()
        assert any(not np.array_equal(u1[k], derived[k]) for k in u1)

    def test_unknown_step_raises(self, tmp_path):
        chain = build_chain(tmp_path, config())
        with pytest.raises(KeyError):
            chain.step("U_99")


class TestCaching:
    def test_cache_round_trip_is_exact(self, tmp_path):
        first = build_chain(tmp_path, config())
        second = build_chain(tmp_path, config())
        for use_case in ("U_1", "U_3-2-2"):
            a = first.build_model(use_case).state_dict()
            b = second.build_model(use_case).state_dict()
            assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_cached_runs_preserve_provenance(self, tmp_path):
        build_chain(tmp_path, config())
        reloaded = build_chain(tmp_path, config())
        run = reloaded.step("U_3-1-1").run
        assert run.rng_state is not None
        assert run.optimizer_state_bytes

    def test_different_configs_different_caches(self, tmp_path):
        a = build_chain(tmp_path, config(base_seed=1))
        b = build_chain(tmp_path, config(base_seed=2))
        sa = a.build_model("U_1").state_dict()
        sb = b.build_model("U_1").state_dict()
        assert any(not np.array_equal(sa[k], sb[k]) for k in sa)


class TestRelations:
    def test_partial_chain_only_changes_classifier(self, tmp_path):
        chain = build_chain(tmp_path, config(relation=PARTIALLY_UPDATED))
        u1 = chain.build_model("U_1").state_dict()
        derived = chain.build_model("U_3-1-1").state_dict()
        changed = [k for k in u1 if not np.array_equal(u1[k], derived[k])]
        assert changed
        assert all(k.startswith("classifier.") for k in changed)

    def test_full_chain_changes_most_layers(self, tmp_path):
        chain = build_chain(tmp_path, config())
        u1 = chain.build_model("U_1").state_dict()
        derived = chain.build_model("U_3-1-1").state_dict()
        changed = [k for k in u1 if not np.array_equal(u1[k], derived[k])]
        assert len(changed) > len(u1) / 2

    def test_invalid_architecture_rejected(self):
        with pytest.raises(KeyError):
            config(architecture="vgg16")

    def test_invalid_relation_rejected(self):
        with pytest.raises(ValueError):
            config(relation="retrained")
