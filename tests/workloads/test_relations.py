"""TrainingRun: recorded derivation steps."""

import numpy as np
import pytest

from repro.workloads import generate_dataset
from repro.workloads.relations import FULLY_UPDATED, PARTIALLY_UPDATED, TrainingRun
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    return generate_dataset("co512", tmp_path_factory.mktemp("rel-data"), scale=1 / 2048)


def make_run(dataset_root, **overrides):
    defaults = dict(
        dataset_dir=dataset_root,
        number_epochs=1,
        number_batches=1,
        seed=3,
        image_size=8,
        num_classes=10,
    )
    defaults.update(overrides)
    return TrainingRun(**defaults)


class TestValidation:
    def test_invalid_relation_rejected(self, dataset_root):
        with pytest.raises(ValueError, match="relation"):
            make_run(dataset_root, relation="sideways")

    def test_freeze_mode_mapping(self, dataset_root):
        assert make_run(dataset_root, relation=FULLY_UPDATED).freeze_mode == "none"
        assert make_run(dataset_root, relation=PARTIALLY_UPDATED).freeze_mode == "partial"


class TestExecution:
    def test_execute_captures_replay_state(self, dataset_root):
        run = make_run(dataset_root)
        model = make_tiny_cnn(num_classes=10)
        run.execute(model)
        assert run.rng_state is not None
        assert run.rng_state["seed"] == 3
        assert run.optimizer_state_bytes is not None

    def test_execute_changes_model(self, dataset_root):
        run = make_run(dataset_root)
        model = make_tiny_cnn(num_classes=10)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        run.execute(model)
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_same_run_same_base_is_deterministic(self, dataset_root):
        states = []
        for _ in range(2):
            run = make_run(dataset_root)
            model = make_tiny_cnn(num_classes=10, seed=1)
            run.execute(model)
            states.append(model.state_dict())
        assert all(np.array_equal(states[0][k], states[1][k]) for k in states[0])


class TestPersistenceHelpers:
    def test_build_service_requires_execution(self, dataset_root):
        with pytest.raises(RuntimeError, match="never executed"):
            make_run(dataset_root).build_train_service()

    def test_provenance_info_requires_execution(self, dataset_root):
        with pytest.raises(RuntimeError, match="never executed"):
            make_run(dataset_root).to_provenance_info("model-" + "0" * 32)

    def test_round_trip_via_dict(self, dataset_root):
        run = make_run(dataset_root)
        run.execute(make_tiny_cnn(num_classes=10))
        restored = TrainingRun.from_dict(run.to_dict())
        assert restored.seed == run.seed
        assert restored.rng_state == run.rng_state
        assert restored.optimizer_state_bytes == run.optimizer_state_bytes
        assert restored.dataset_dir == run.dataset_dir

    def test_provenance_info_carries_expectations(self, dataset_root):
        run = make_run(dataset_root)
        model = make_tiny_cnn(num_classes=10)
        run.execute(model)
        info = run.to_provenance_info("model-" + "a" * 32, trained_model=model, use_case="U_3-1-1")
        assert info.base_model_id == "model-" + "a" * 32
        assert info.expected_model is model
        assert info.use_case == "U_3-1-1"
        assert info.train_spec.seed == 3
