"""Wire protocol: framing, typed error kinds, exception mapping."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ModelNotFoundError
from repro.errors import (
    DeadlineExceededError,
    StoreCorruptionError,
    TransientStoreError,
)
from repro.gateway import protocol
from repro.gateway.protocol import (
    ERROR_KINDS,
    GatewayError,
    decode_line,
    encode_line,
    error_from_exception,
    error_payload,
)


class TestFraming:
    def test_roundtrip(self):
        message = {"id": 7, "op": "save", "tenant": "acme", "deadline_s": 2.5}
        assert decode_line(encode_line(message)) == message

    def test_encoded_line_is_newline_terminated_compact_json(self):
        data = encode_line({"id": 1, "op": "ping"})
        assert data.endswith(b"\n")
        assert b" " not in data  # compact separators
        assert json.loads(data) == {"id": 1, "op": "ping"}

    def test_decode_rejects_malformed_json(self):
        with pytest.raises(GatewayError) as excinfo:
            decode_line(b"{not json}\n")
        assert excinfo.value.kind == "invalid"
        assert not excinfo.value.retryable

    def test_decode_rejects_non_object_frames(self):
        with pytest.raises(GatewayError) as excinfo:
            decode_line(b"[1, 2, 3]\n")
        assert excinfo.value.kind == "invalid"

    def test_oversized_frames_rejected_both_ways(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
        big = {"id": 1, "blob": "x" * 128}
        with pytest.raises(GatewayError) as encoded:
            encode_line(big)
        assert encoded.value.kind == "invalid"
        with pytest.raises(GatewayError) as decoded:
            decode_line(b"x" * 128)
        assert decoded.value.kind == "invalid"


class TestErrorKinds:
    def test_retryable_map_is_the_stable_contract(self):
        retryable = {k for k, v in ERROR_KINDS.items() if v}
        assert retryable == {
            "overloaded", "quota", "deadline", "unavailable", "shutting_down",
        }
        permanent = {k for k, v in ERROR_KINDS.items() if not v}
        assert permanent == {
            "not_found", "invalid", "forbidden", "corrupt", "internal",
        }

    def test_gateway_error_derives_retryable_from_kind(self):
        assert GatewayError("overloaded", "shed").retryable is True
        assert GatewayError("forbidden", "nope").retryable is False

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError):
            GatewayError("mystery", "boom")

    def test_payload_includes_rounded_retry_after(self):
        payload = error_payload(GatewayError("quota", "slow down", retry_after_s=0.123456))
        assert payload == {
            "kind": "quota",
            "message": "slow down",
            "retryable": True,
            "retry_after_s": 0.1235,
        }

    def test_payload_omits_retry_after_when_unset(self):
        assert "retry_after_s" not in error_payload(GatewayError("internal", "x"))


class TestExceptionMapping:
    @pytest.mark.parametrize(
        "exc, kind, retryable",
        [
            (DeadlineExceededError("late"), "deadline", True),
            (ModelNotFoundError("model-x"), "not_found", False),
            (StoreCorruptionError("bad digest"), "corrupt", False),
            (TransientStoreError("flaky"), "unavailable", True),
            (ValueError("bad input"), "invalid", False),
            (TypeError("bad type"), "invalid", False),
            (KeyError("missing"), "invalid", False),
            (RuntimeError("bug"), "internal", False),
        ],
    )
    def test_worker_exceptions_map_to_typed_kinds(self, exc, kind, retryable):
        mapped = error_from_exception(exc)
        assert mapped.kind == kind
        assert mapped.retryable is retryable

    def test_gateway_errors_pass_through_unchanged(self):
        original = GatewayError("quota", "slow down", retry_after_s=0.5)
        assert error_from_exception(original) is original
