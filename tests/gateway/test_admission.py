"""Admission control: token buckets and bounded per-tenant queues.

All time comes from a manual clock — no sleeps, no flakes.
"""

from __future__ import annotations

import pytest

from repro.gateway import AdmissionController, GatewayError, TenantQuota, TokenBucket
from tests.gateway.conftest import FakeClock


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert bucket.tokens == pytest.approx(3.0)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            bucket.try_acquire()
        clock.advance(1.0)  # 2 tokens back
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)  # far past capacity — clamps to burst
        assert bucket.tokens == pytest.approx(4.0)

    def test_retry_after_is_honest(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        # empty; one token at 2/s takes 0.5s
        assert bucket.retry_after(1.0) == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.retry_after(1.0) == 0.0
        assert bucket.try_acquire()

    def test_fractional_acquire_supports_byte_charges(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=10.0, clock=clock)
        assert bucket.try_acquire(7.5)
        assert not bucket.try_acquire(7.5)
        assert bucket.try_acquire(2.5)

    @pytest.mark.parametrize("rate, burst", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_parameters_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def controller(clock):
    quotas = {
        "acme": TenantQuota(
            requests_per_s=10.0,
            bytes_per_s=1000.0,
            burst_requests=5.0,
            burst_bytes=100.0,
            max_inflight=2,
        ),
        "globex": TenantQuota(),
    }
    return AdmissionController(quotas, clock=clock)


class TestAdmissionController:
    def test_admits_within_quota(self, controller):
        ticket = controller.admit("acme", nbytes=10)
        assert controller.inflight("acme") == 1
        ticket.release()
        assert controller.inflight("acme") == 0

    def test_unknown_tenant_forbidden(self, controller):
        with pytest.raises(GatewayError) as excinfo:
            controller.admit("mallory")
        assert excinfo.value.kind == "forbidden"

    def test_queue_full_sheds_overloaded_with_backoff_hint(self, controller):
        tickets = [controller.admit("acme") for _ in range(2)]  # max_inflight
        with pytest.raises(GatewayError) as excinfo:
            controller.admit("acme")
        assert excinfo.value.kind == "overloaded"
        assert excinfo.value.retryable
        assert excinfo.value.retry_after_s > 0
        # releasing one slot readmits
        tickets[0].release()
        controller.admit("acme").release()
        for ticket in tickets[1:]:
            ticket.release()

    def test_request_rate_sheds_quota_with_honest_retry_after(
        self, controller, clock
    ):
        for _ in range(5):  # burst_requests
            controller.admit("acme").release()
        with pytest.raises(GatewayError) as excinfo:
            controller.admit("acme")
        assert excinfo.value.kind == "quota"
        assert excinfo.value.retryable
        # 1 token at 10/s = 0.1s; waiting that long readmits
        assert excinfo.value.retry_after_s == pytest.approx(0.1)
        clock.advance(0.1)
        controller.admit("acme").release()

    def test_byte_rate_sheds_quota(self, controller):
        controller.admit("acme", nbytes=100).release()  # drains burst_bytes
        with pytest.raises(GatewayError) as excinfo:
            controller.admit("acme", nbytes=50)
        assert excinfo.value.kind == "quota"
        assert "byte" in str(excinfo.value)

    def test_oversized_payload_charge_capped_at_burst(self, controller):
        # a single payload larger than the bucket must still be admittable —
        # charging raw nbytes would make it permanently rejectable
        ticket = controller.admit("acme", nbytes=10_000_000)
        ticket.release()

    def test_shed_request_never_leaks_a_queue_slot(self, controller, clock):
        # exhaust the request bucket, then confirm inflight stayed zero
        for _ in range(5):
            controller.admit("acme").release()
        for _ in range(3):
            with pytest.raises(GatewayError):
                controller.admit("acme")
        assert controller.inflight("acme") == 0
        clock.advance(10.0)
        assert controller.inflight("acme") == 0

    def test_tenant_queues_are_independent(self, controller):
        tickets = [controller.admit("acme") for _ in range(2)]
        with pytest.raises(GatewayError):
            controller.admit("acme")
        # acme's full queue does not touch globex
        controller.admit("globex").release()
        for ticket in tickets:
            ticket.release()

    def test_total_inflight_spans_tenants(self, controller):
        a = controller.admit("acme")
        b = controller.admit("globex")
        assert controller.total_inflight() == 2
        a.release()
        b.release()
        assert controller.total_inflight() == 0

    def test_ticket_release_is_idempotent_and_context_managed(self, controller):
        with controller.admit("acme") as ticket:
            assert controller.inflight("acme") == 1
        ticket.release()  # second release is a no-op
        assert controller.inflight("acme") == 0
