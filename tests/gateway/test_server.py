"""End-to-end gateway tests over real sockets.

Each test starts a :class:`GatewayServer` on an ephemeral port (its
event loop runs in a background thread) and drives it with the async
client via ``asyncio.run`` — the same path ``mmlib serve`` and the
serving benchmark use.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro import deadline, obs
from repro.distsim.environment import SharedStores
from repro.faults import FaultInjector
from repro.gateway import (
    AsyncGatewayClient,
    GatewayRequestError,
    GatewayRetryableError,
    GatewayServer,
    IdleMaintenance,
    TenantQuota,
    TenantRegistry,
)
from repro.gateway.maintenance import RECOVERY_DEPTH_GAUGE
from repro.retry import RetryPolicy
from repro.workloads.serving import serving_mlp

FACTORY = "repro.workloads.serving:serving_mlp"


def run(coro):
    return asyncio.run(coro)


def make_registry(tmp_path, tenants=None, **stores_kwargs):
    stores = SharedStores.at(tmp_path / "store", **stores_kwargs)
    if tenants is None:
        tenants = {"acme": TenantQuota(), "globex": TenantQuota()}
    return TenantRegistry(stores, tenants)


def mlp_state(step: int = 0) -> dict:
    """A distinguishable, bit-exact state dict for the serving MLP."""
    state = serving_mlp().state_dict()
    if step:
        state = {
            key: (value + np.float32(0.001 * step)).astype(value.dtype)
            for key, value in state.items()
        }
    return state


def assert_states_bitwise_equal(actual: dict, expected: dict) -> None:
    assert sorted(actual) == sorted(expected)
    for key, value in expected.items():
        got = actual[key]
        assert got.dtype == value.dtype and got.shape == value.shape
        assert np.array_equal(got, value), f"mismatch at {key}"


class TestRequestPlane:
    def test_ping_save_recover_find_delete(self, tmp_path):
        registry = make_registry(tmp_path)
        state = mlp_state(step=3)
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    pong = await client.ping()
                    assert pong["pong"] and not pong["draining"]

                    model_id = await client.save_model(
                        FACTORY, state=state, use_case="U_1"
                    )
                    assert model_id.startswith("acme/")

                    recovered = await client.recover_model(model_id)
                    assert recovered.verified
                    assert recovered.recovery_depth == 0
                    assert_states_bitwise_equal(recovered.state, state)

                    models = await client.find(use_case="U_1")
                    assert [m["model_id"] for m in models] == [model_id]

                    stats = await client.stats()
                    assert stats["tenant"]["name"] == "acme"
                    assert stats["tenants"] == {"acme": 1, "globex": 0}

                    await client.delete_model(model_id, force=True)
                    assert await client.find() == []
            run(scenario())

    def test_delta_chain_roundtrips_through_gateway(self, tmp_path):
        registry = make_registry(tmp_path)
        states = [mlp_state(step) for step in range(3)]
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    base = None
                    ids = []
                    for state in states:
                        base = await client.save_model(
                            FACTORY, state=state, base=base
                        )
                        ids.append(base)
                    tip = await client.recover_model(ids[-1])
                    assert tip.recovery_depth == 2
                    assert tip.base_model_id == ids[-2]
                    assert_states_bitwise_equal(tip.state, states[-1])
            run(scenario())

    def test_cross_tenant_access_is_forbidden_not_data(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as acme:
                    model_id = await acme.save_model(FACTORY, state=mlp_state(1))
                async with AsyncGatewayClient(*server.address, "globex") as globex:
                    # the catalog does not leak
                    assert await globex.find() == []
                    # a stolen qualified id is a name, not a capability
                    with pytest.raises(GatewayRequestError) as excinfo:
                        await globex.recover_model(model_id)
                    assert excinfo.value.kind == "forbidden"
                    assert excinfo.value.retryable is False
            run(scenario())

    def test_unknown_tenant_and_unknown_op_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "mallory") as client:
                    with pytest.raises(GatewayRequestError) as forbidden:
                        await client.find()
                    assert forbidden.value.kind == "forbidden"
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    with pytest.raises(GatewayRequestError) as invalid:
                        await client.request("frobnicate")
                    assert invalid.value.kind == "invalid"
            run(scenario())

    def test_factory_outside_allowlist_is_forbidden(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    with pytest.raises(GatewayRequestError) as excinfo:
                        await client.save_model("os.path:join")
                    assert excinfo.value.kind == "forbidden"
            run(scenario())

    def test_malformed_frame_gets_typed_error_not_a_hang(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            async def scenario():
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"{this is not json\n")
                await writer.drain()
                response = json.loads(await asyncio.wait_for(reader.readline(), 5))
                assert response["ok"] is False
                assert response["error"]["kind"] == "invalid"
                writer.close()
                await writer.wait_closed()
            run(scenario())


class TestAdmissionPlane:
    def test_overload_sheds_typed_retryable_and_answers_everything(self, tmp_path):
        registry = make_registry(
            tmp_path,
            tenants={
                "acme": TenantQuota(
                    requests_per_s=10_000.0,
                    burst_requests=1_000.0,
                    max_inflight=2,
                    max_concurrency=1,
                )
            },
        )
        with GatewayServer(registry, workers=2) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    results = await asyncio.gather(
                        *(
                            client.save_model(FACTORY, state=mlp_state(i))
                            for i in range(16)
                        ),
                        return_exceptions=True,
                    )
                    return results
            results = run(scenario())
        saved = [r for r in results if isinstance(r, str)]
        shed = [r for r in results if isinstance(r, GatewayRetryableError)]
        unexpected = [
            r for r in results if not isinstance(r, (str, GatewayRetryableError))
        ]
        # every request answered: acked, or shed with a typed retryable error
        assert unexpected == []
        assert len(saved) + len(shed) == 16
        assert saved and shed  # both regimes exercised
        assert {error.kind for error in shed} == {"overloaded"}
        assert all(error.retry_after_s is not None for error in shed)
        # the queue bound held: at most max_inflight acked per wave
        assert len(saved) <= 2

    def test_rate_quota_sheds_with_honest_retry_after(self, tmp_path):
        registry = make_registry(
            tmp_path,
            tenants={"acme": TenantQuota(requests_per_s=1.0, burst_requests=2.0)},
        )
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    await client.find()
                    await client.find()
                    with pytest.raises(GatewayRetryableError) as excinfo:
                        await client.find()
                    assert excinfo.value.kind == "quota"
                    assert 0 < excinfo.value.retry_after_s <= 1.0
            run(scenario())

    def test_draining_gateway_sheds_with_shutting_down(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            server._draining = True  # what stop() sets before loop teardown
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    pong = await client.ping()  # health probes still answer
                    assert pong["draining"] is True
                    with pytest.raises(GatewayRetryableError) as excinfo:
                        await client.find()
                    assert excinfo.value.kind == "shutting_down"
            run(scenario())
            server._draining = False


class TestDeadlinePlane:
    def test_budget_spent_in_queue_fails_typed_not_hung(self, tmp_path):
        registry = make_registry(tmp_path)
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    with pytest.raises(GatewayRetryableError) as excinfo:
                        await client.find(deadline_s=0.000001)
                    assert excinfo.value.kind == "deadline"
            run(scenario())

    def test_deadline_propagates_into_storage_retry_loop(self, tmp_path):
        # every storage op fails transiently; the retry policy would grind
        # through 10k attempts — unless the ambient deadline entered on the
        # worker thread stops it.  A typed 'deadline' response well before
        # the retries exhaust proves the client budget reached storage.
        registry = make_registry(
            tmp_path,
            faults=FaultInjector(error_rate=1.0, seed=7),
            retry=RetryPolicy(max_attempts=10_000, base_delay_s=0.002),
        )
        with GatewayServer(registry) as server:
            async def scenario():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    start = time.perf_counter()
                    with pytest.raises(GatewayRetryableError) as excinfo:
                        await client.save_model(
                            FACTORY, state=mlp_state(1), deadline_s=0.5
                        )
                    elapsed = time.perf_counter() - start
                    assert excinfo.value.kind == "deadline"
                    assert elapsed < 5.0  # bounded by the budget, not retries
            run(scenario())

    def test_ambient_scope_stamps_budget_onto_requests(self):
        captured = {}

        async def scenario():
            async def handle(reader, writer):
                message = json.loads(await reader.readline())
                captured.update(message)
                writer.write(
                    json.dumps({"id": message["id"], "ok": True, "pong": True}).encode()
                    + b"\n"
                )
                await writer.drain()

            fake = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = fake.sockets[0].getsockname()[1]
            async with fake:
                async with AsyncGatewayClient("127.0.0.1", port, "acme") as client:
                    with deadline.scope(2.0):
                        await client.ping()

        run(scenario())
        assert 0 < captured["deadline_s"] <= 2.0

    def test_silent_server_raises_typed_timeout_never_hangs(self):
        async def scenario():
            async def handle(reader, writer):
                await reader.readline()
                await asyncio.sleep(30)  # never answer

            fake = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = fake.sockets[0].getsockname()[1]
            async with fake:
                client = AsyncGatewayClient("127.0.0.1", port, "acme")
                client.grace_s = 0.2
                async with client:
                    with pytest.raises(GatewayRetryableError) as excinfo:
                        await client.request("ping", deadline_s=0.1)
                    assert excinfo.value.kind == "timeout"

        run(scenario())


class TestIdleMaintenance:
    def test_deep_chain_recovery_triggers_idle_compaction(self, tmp_path):
        registry = make_registry(tmp_path, tenants={"acme": TenantQuota()})
        maintenance = IdleMaintenance(registry, max_depth=3, min_interval_s=0.0)
        states = [mlp_state(step) for step in range(6)]
        gauge = obs.registry().gauge(RECOVERY_DEPTH_GAUGE)
        server = GatewayServer(
            registry, maintenance=maintenance, idle_poll_s=0.01
        )
        with server:
            async def build_and_recover():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    base = None
                    for state in states:
                        base = await client.save_model(FACTORY, state=state, base=base)
                    return base, await client.recover_model(base)

            tip_id, before = run(build_and_recover())
            assert before.recovery_depth == 5
            assert gauge.value == 5  # the high-water mark armed the trigger

            deadline_at = time.perf_counter() + 15.0
            while maintenance.runs == 0 and time.perf_counter() < deadline_at:
                time.sleep(0.02)
            assert maintenance.runs >= 1
            assert maintenance.compacted_models >= 1
            assert gauge.value == 0  # mark reset after a successful sweep

            async def recover_again():
                async with AsyncGatewayClient(*server.address, "acme") as client:
                    return await client.recover_model(tip_id)

            after = run(recover_again())
            assert after.recovery_depth < before.recovery_depth
            assert_states_bitwise_equal(after.state, states[-1])
