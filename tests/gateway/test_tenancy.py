"""Tenant namespaces: isolated catalogs, qualified ids, the admin union."""

from __future__ import annotations

import pytest

from repro.core import ArchitectureRef, ModelSaveInfo
from repro.distsim.environment import SharedStores
from repro.docstore import (
    DocumentStore,
    NamespacedDocumentStore,
    UnionDocumentStore,
    tenant_collection_name,
    validate_tenant_name,
)
from repro.gateway import GatewayError, TenantQuota, TenantRegistry
from repro.gateway.tenancy import qualify_id, split_qualified_id
from tests.conftest import make_tiny_cnn

FACTORY_REF = ("tests.conftest", "make_tiny_cnn", {"num_classes": 10})


class TestTenantNames:
    def test_accepts_lowercase_alphanumerics(self):
        for name in ("acme", "t1", "a-b_c", "0day"):
            assert validate_tenant_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "Acme", "a/b", "-lead", "a" * 65, None, "tenant name"]
    )
    def test_rejects_illegal_names(self, name):
        with pytest.raises(ValueError):
            validate_tenant_name(name)

    def test_physical_collection_name_embeds_tenant(self):
        assert tenant_collection_name("acme", "models") == "tenant--acme--models"


class TestNamespacedStore:
    def test_tenants_cannot_see_each_other(self, mem_doc_store):
        acme = NamespacedDocumentStore(mem_doc_store, "acme")
        globex = NamespacedDocumentStore(mem_doc_store, "globex")
        acme.collection("models").insert_one({"_id": "m1", "tenant": "acme"})
        assert acme.collection("models").count() == 1
        assert globex.collection("models").count() == 0
        with pytest.raises(KeyError):
            globex.collection("models").get("m1")

    def test_same_logical_name_maps_to_distinct_physical_collections(
        self, mem_doc_store
    ):
        NamespacedDocumentStore(mem_doc_store, "acme").collection(
            "models"
        ).insert_one({"_id": "m1"})
        assert mem_doc_store.collection("tenant--acme--models").count() == 1

    def test_storage_bytes_scopes_to_own_collections(self, tmp_path):
        store = DocumentStore(tmp_path / "docs")
        acme = NamespacedDocumentStore(store, "acme")
        globex = NamespacedDocumentStore(store, "globex")
        acme.collection("models").insert_one({"_id": "m1", "blob": "x" * 4096})
        assert acme.storage_bytes() > 0
        assert globex.storage_bytes() == 0


class TestUnionStore:
    @pytest.fixture
    def populated(self, mem_doc_store):
        for tenant, doc_id in (("acme", "m1"), ("globex", "m2")):
            NamespacedDocumentStore(mem_doc_store, tenant).collection(
                "models"
            ).insert_one({"_id": doc_id, "owner": tenant})
        return UnionDocumentStore(mem_doc_store, ["acme", "globex"])

    def test_reads_span_every_tenant(self, populated):
        models = populated.collection("models")
        assert models.count() == 2
        assert models.get("m1")["owner"] == "acme"
        assert models.get("m2")["owner"] == "globex"
        assert {d["_id"] for d in models.find({})} == {"m1", "m2"}
        assert models.find_one({"owner": "globex"})["_id"] == "m2"
        assert [d["_id"] for d in models.get_many(["m2", "m1"])] == ["m2", "m1"]

    def test_repairs_land_on_the_owning_tenant(self, populated, mem_doc_store):
        models = populated.collection("models")
        models.replace_one("m1", {"_id": "m1", "owner": "acme", "fixed": True})
        assert mem_doc_store.collection("tenant--acme--models").get("m1")["fixed"]
        assert models.delete_one("m2")
        assert mem_doc_store.collection("tenant--globex--models").count() == 0

    def test_inserts_are_refused(self, populated):
        with pytest.raises(TypeError):
            populated.collection("models").insert_one({"_id": "m3"})

    def test_missing_document_raises_keyerror(self, populated):
        with pytest.raises(KeyError):
            populated.collection("models").get("m-missing")

    def test_tenant_model_counts(self, populated):
        assert populated.tenant_model_counts() == {"acme": 1, "globex": 1}


class TestQualifiedIds:
    def test_qualify_and_split_roundtrip(self):
        qualified = qualify_id("acme", "model-abc")
        assert qualified == "acme/model-abc"
        assert split_qualified_id("acme", qualified) == "model-abc"

    def test_unqualified_id_is_own_namespace_shorthand(self):
        assert split_qualified_id("acme", "model-abc") == "model-abc"

    def test_foreign_tenant_id_is_forbidden_not_data(self):
        with pytest.raises(GatewayError) as excinfo:
            split_qualified_id("acme", "globex/model-abc")
        assert excinfo.value.kind == "forbidden"
        assert not excinfo.value.retryable

    def test_malformed_qualified_id_is_invalid(self):
        with pytest.raises(GatewayError) as excinfo:
            split_qualified_id("acme", "acme/")
        assert excinfo.value.kind == "invalid"


class TestTenantQuota:
    def test_defaults_are_sane(self):
        quota = TenantQuota()
        assert quota.requests_per_s > 0 and quota.max_inflight >= 1
        assert quota.max_concurrency >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"requests_per_s": 0},
            {"bytes_per_s": -1},
            {"burst_requests": 0},
            {"burst_bytes": 0},
            {"max_inflight": 0},
            {"max_concurrency": 0},
        ],
    )
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestTenantRegistry:
    @pytest.fixture
    def stores(self, tmp_path):
        return SharedStores.at(tmp_path / "store")

    def test_accepts_list_with_default_quotas(self, stores):
        registry = TenantRegistry(stores, ["globex", "acme"])
        assert registry.tenant_names == ["acme", "globex"]
        assert registry.tenant("acme").quota == TenantQuota()

    def test_unknown_tenant_is_forbidden(self, stores):
        registry = TenantRegistry(stores, ["acme"])
        with pytest.raises(GatewayError) as excinfo:
            registry.tenant("mallory")
        assert excinfo.value.kind == "forbidden"

    def test_needs_at_least_one_tenant(self, stores):
        with pytest.raises(ValueError):
            TenantRegistry(stores, [])

    def test_unknown_approach_rejected(self, stores):
        with pytest.raises(KeyError):
            TenantRegistry(stores, ["acme"], approach="telepathy")

    def test_admin_manager_spans_tenants_and_fsck_is_clean(self, stores):
        registry = TenantRegistry(stores, ["acme", "globex"])
        for name in ("acme", "globex"):
            tenant = registry.tenant(name)
            module, factory, kwargs = FACTORY_REF
            arch = ArchitectureRef.from_factory(module, factory, kwargs)
            tenant.service.save_model(
                ModelSaveInfo(model=arch.build(), architecture=arch)
            )
        # each tenant's own catalog sees exactly its model
        for name in ("acme", "globex"):
            assert len(registry.tenant(name).manager.list_models()) == 1
        # the admin union sees both, and fsck over it keeps shared files:
        # an orphan sweep scoped to one tenant would eat the other's chunks
        admin = registry.admin_manager()
        assert len(admin.list_models()) == 2
        report = admin.fsck(verify_chunks=True)
        assert report.clean
        assert report.checked_models == 2
        stats = admin.stats()
        assert stats["tenants"] == {"acme": 1, "globex": 1}
