"""Shared fixtures for the gateway test suite."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs():
    """Zero the global metric registry between tests.

    Gateway components publish to the process-wide registry (queue depth,
    recovery-depth high-water mark, admission outcomes); without a reset,
    one test's traffic would leak into the next test's assertions — and a
    stale recovery-depth mark could trigger idle maintenance spuriously.
    """
    obs.reset()
    yield
    obs.reset()


class FakeClock:
    """Manual clock compatible with ``obs.clock()`` consumers."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def perf(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds
