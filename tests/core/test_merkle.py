"""Merkle tree: construction, diffing, the paper's comparison-count claims."""

import hashlib
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MerkleTree
from tests.conftest import make_tiny_cnn


def leaf(i: int, version: int = 0) -> str:
    return hashlib.sha256(f"layer-{i}-v{version}".encode()).hexdigest()


def tree_with(num_layers: int, changed: set[int] = frozenset()) -> MerkleTree:
    names = [f"layer{i}" for i in range(num_layers)]
    hashes = [leaf(i, 1 if i in changed else 0) for i in range(num_layers)]
    return MerkleTree(names, hashes)


class TestConstruction:
    def test_single_leaf(self):
        tree = tree_with(1)
        assert tree.root_hash == leaf(0)
        assert len(tree) == 1

    def test_root_differs_from_leaves(self):
        tree = tree_with(4)
        assert tree.root_hash not in tree.leaf_hashes

    def test_equal_leaves_equal_roots(self):
        assert tree_with(8) == tree_with(8)

    def test_any_leaf_change_changes_root(self):
        for i in range(8):
            assert tree_with(8).root_hash != tree_with(8, {i}).root_hash

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([], [])

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree(["a"], [])

    def test_from_state_dict(self):
        tree = MerkleTree.from_state_dict(make_tiny_cnn().state_dict())
        assert len(tree) == len(make_tiny_cnn().state_dict())

    def test_non_power_of_two_sizes(self):
        for n in (3, 5, 7, 9, 13):
            tree = tree_with(n)
            assert len(tree) == n
            assert tree.diff(tree).changed_layers == []


class TestDiff:
    def test_identical_trees_single_comparison(self):
        result = tree_with(64).diff(tree_with(64))
        assert result.changed_layers == []
        assert result.comparisons == 1

    def test_finds_changed_layers(self):
        result = tree_with(16).diff(tree_with(16, {3, 10}))
        assert result.changed_layers == ["layer3", "layer10"]

    def test_paper_example_8_layers_last_two_changed(self):
        """Figure 4: 8 layers, last two changed -> 7 comparisons."""
        result = tree_with(8).diff(tree_with(8, {6, 7}))
        assert result.changed_layers == ["layer6", "layer7"]
        assert result.comparisons == 7

    def test_paper_example_64_layers(self):
        """Section 3.2: 64 layers, trailing two changed -> 13 comparisons."""
        result = tree_with(64).diff(tree_with(64, {62, 63}))
        assert result.comparisons == 13

    def test_paper_example_128_layers(self):
        """Section 3.2: 128 layers, trailing two changed -> 15 comparisons."""
        result = tree_with(128).diff(tree_with(128, {126, 127}))
        assert result.comparisons == 15

    def test_all_changed_costs_more_than_flat(self):
        a, b = tree_with(32), tree_with(32, set(range(32)))
        assert a.diff(b).comparisons > 32  # inner nodes also compared

    def test_flat_diff_always_touches_every_leaf(self):
        a, b = tree_with(32), tree_with(32, {0})
        flat = a.flat_diff(b)
        assert flat.comparisons == 32
        assert flat.changed_layers == ["layer0"]

    def test_structure_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tree_with(4).diff(tree_with(5))
        with pytest.raises(ValueError):
            tree_with(4).flat_diff(tree_with(5))


class TestSerialization:
    def test_round_trip(self):
        tree = tree_with(10, {2})
        restored = MerkleTree.from_dict(tree.to_dict())
        assert restored.root_hash == tree.root_hash
        assert restored.layer_names == tree.layer_names

    def test_tampered_payload_rejected(self):
        payload = tree_with(4).to_dict()
        payload["hashes"][0] = leaf(99)
        with pytest.raises(ValueError, match="inconsistent"):
            MerkleTree.from_dict(payload)

    def test_from_layer_hashes_ordered(self):
        hashes = OrderedDict([("b", leaf(1)), ("a", leaf(2))])
        tree = MerkleTree.from_layer_hashes(hashes)
        assert tree.layer_names == ["b", "a"]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 40),
    changed=st.sets(st.integers(0, 39), max_size=10),
)
def test_property_merkle_diff_matches_flat_diff(n, changed):
    changed = {c for c in changed if c < n}
    a, b = tree_with(n), tree_with(n, changed)
    merkle = a.diff(b)
    flat = a.flat_diff(b)
    assert merkle.changed_layers == flat.changed_layers
    assert set(merkle.changed_layers) == {f"layer{i}" for i in changed}


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 64), changed=st.sets(st.integers(0, 63), min_size=1, max_size=2))
def test_property_sparse_changes_beat_flat_scan_for_wide_trees(n, changed):
    """With <=2 changed layers the Merkle walk visits O(log n) per change."""
    changed = {c % n for c in changed}
    a, b = tree_with(n), tree_with(n, changed)
    comparisons = a.diff(b).comparisons
    import math

    bound = 1 + 2 * len(changed) * (math.ceil(math.log2(n)) + 1)
    assert comparisons <= bound


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 30))
def test_property_root_equality_iff_leaves_equal(n):
    assert tree_with(n) == tree_with(n)
    if n >= 1:
        assert tree_with(n) != tree_with(n, {n - 1})
