"""ProvenanceRecorder: the node-side capture workflow from §3.3."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    ModelSaveInfo,
    ProvenanceRecorder,
    ProvenanceSaveService,
)
from repro.core.errors import SaveError
from repro.workloads import generate_dataset
from repro.workloads.relations import TrainingRun
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_provenance_recorder", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    return generate_dataset("co512", tmp_path_factory.mktemp("rec-data"), scale=1 / 2048)


class TestRecorderWorkflow:
    def test_docstring_workflow_round_trips(
        self, dataset_root, mem_doc_store, file_store, tmp_path
    ):
        """The recorder usage shown in the module docstring, end to end."""
        service = ProvenanceSaveService(
            mem_doc_store, file_store, scratch_dir=tmp_path / "scratch"
        )
        base = make_tiny_cnn(num_classes=10, seed=2)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        # build the live train service the node would use
        run = TrainingRun(
            dataset_dir=dataset_root, number_epochs=1, number_batches=2,
            seed=13, image_size=8, num_classes=10,
        )
        model = make_tiny_cnn(num_classes=10)
        model.load_state_dict(base.state_dict())
        dataset = run._make_dataset()
        from repro.nn.optim import SGD

        optimizer = SGD(list(model.parameters()), lr=run.learning_rate,
                        momentum=run.momentum)
        train_service = run._build_service(
            dataset_instance=dataset, optimizer_instance=optimizer
        )

        recorder = ProvenanceRecorder(
            base_id,
            train_service,
            number_epochs=1,
            number_batches=2,
            seed=13,
            dataset_dir=dataset_root,
        )
        recorder.start()  # pins RNG + snapshots optimizer state
        train_service.train(model, number_epochs=1, number_batches=2)
        info = recorder.finish(trained_model=model, use_case="U_3-1-1")

        model_id = service.save_model(info)
        recovered = service.recover_model(model_id)
        assert recovered.verified is True
        expected = model.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_finish_before_start_rejected(self, dataset_root):
        run = TrainingRun(dataset_dir=dataset_root, num_classes=10, image_size=8)
        recorder = ProvenanceRecorder(
            "model-" + "0" * 32,
            run._build_service(),
            number_epochs=1,
            dataset_dir=dataset_root,
        )
        with pytest.raises(SaveError, match="before start"):
            recorder.finish()

    def test_start_without_seed_keeps_current_seed(self, dataset_root):
        from repro.nn import rng
        from repro.nn.optim import SGD

        run = TrainingRun(dataset_dir=dataset_root, num_classes=10, image_size=8)
        model = make_tiny_cnn(num_classes=10)  # reseeds internally
        service = run._build_service(
            optimizer_instance=SGD(list(model.parameters()), lr=0.1)
        )
        rng.manual_seed(4242)
        recorder = ProvenanceRecorder(
            "model-" + "0" * 32,
            service,
            number_epochs=1,
            dataset_dir=dataset_root,
        )
        recorder.start()
        assert recorder.seed == 4242


class TestSmallGaps:
    def test_nll_loss_direct(self):
        import repro.nn.functional as F
        from repro.nn import Tensor

        log_probs = Tensor(
            np.log(np.array([[0.25, 0.75], [0.9, 0.1]], dtype=np.float32)),
            requires_grad=True,
        )
        loss = F.nll_loss(log_probs, np.array([1, 0]))
        expected = -(np.log(0.75) + np.log(0.9)) / 2
        assert loss.item() == pytest.approx(float(expected), rel=1e-5)
        loss.backward()
        assert log_probs.grad[0, 1] == pytest.approx(-0.5)
        assert log_probs.grad[0, 0] == 0.0

    def test_architecture_ref_build_rejects_non_module(self):
        ref = ArchitectureRef.from_factory("builtins", "dict", {})
        with pytest.raises(SaveError, match="expected a Module"):
            ref.build()

    def test_architecture_ref_unknown_factory(self):
        with pytest.raises(SaveError, match="no factory"):
            ArchitectureRef.from_factory("repro.nn.models", "vgg16", {})

    def test_remote_client_unknown_op(self, tmp_path):
        from repro.docstore import (
            DocumentStore,
            DocumentStoreClient,
            DocumentStoreServer,
            RemoteStoreError,
        )

        with DocumentStoreServer(DocumentStore(), port=0) as server:
            with DocumentStoreClient(server.host, server.port) as client:
                with pytest.raises(RemoteStoreError, match="unsupported op"):
                    client.request("models", "drop_everything")
