"""Baseline approach: full snapshots, independent recovery (§3.1)."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelNotFoundError,
    ModelSaveInfo,
    VerificationError,
    is_model_id,
)
from repro.core.schema import APPROACH_BASELINE, ENVIRONMENTS, MODELS
from tests.conftest import make_tiny_cnn


@pytest.fixture
def service(mem_doc_store, file_store):
    return BaselineSaveService(mem_doc_store, file_store)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_baseline", "build_probe_model", {"num_classes": 10}
    )


def build_probe_model(num_classes=10):
    """Importable factory used by ArchitectureRef round trips."""
    return make_tiny_cnn(num_classes=num_classes)


class TestSave:
    def test_save_returns_model_id(self, service):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        assert is_model_id(model_id)

    def test_documents_created(self, service, mem_doc_store):
        service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        assert mem_doc_store.collection(MODELS).count() == 1
        assert mem_doc_store.collection(ENVIRONMENTS).count() == 1

    def test_document_layout(self, service, mem_doc_store):
        model_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(), tiny_arch(), use_case="U_1")
        )
        document = mem_doc_store.collection(MODELS).get(model_id)
        assert document["approach"] == APPROACH_BASELINE
        assert document["use_case"] == "U_1"
        assert document["base_model"] is None
        assert document["parameters_file"]
        assert document["merkle_root"]
        assert document["architecture"]["factory"] == "build_probe_model"

    def test_checksums_optional(self, service, mem_doc_store):
        model_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(), tiny_arch(), store_checksums=False)
        )
        document = mem_doc_store.collection(MODELS).get(model_id)
        assert "merkle_root" not in document

    def test_base_reference_stored_but_not_required(self, service):
        base_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        derived_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch(), base_model_id=base_id)
        )
        assert service.base_chain(derived_id) == [derived_id, base_id]

    def test_invalid_save_info_rejected(self, service):
        from repro.core.errors import SaveError

        with pytest.raises(SaveError):
            service.save_model(ModelSaveInfo("not a model", tiny_arch()))

    def test_code_file_persisted(self, service, mem_doc_store, file_store):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        code = file_store.recover_bytes(document["architecture"]["code_file_id"])
        assert b"build_probe_model" in code


class TestRecover:
    def test_round_trip_is_exact(self, service):
        model = make_tiny_cnn(seed=4)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        recovered = service.recover_model(model_id)
        for key, value in model.state_dict().items():
            assert np.array_equal(value, recovered.model.state_dict()[key]), key

    def test_recover_info_fields(self, service):
        model_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(), tiny_arch(), use_case="U_2")
        )
        recovered = service.recover_model(model_id)
        assert recovered.model_id == model_id
        assert recovered.approach == APPROACH_BASELINE
        assert recovered.use_case == "U_2"
        assert recovered.verified is True
        assert recovered.recovery_depth == 0
        assert set(recovered.timings) == {"load", "recover", "check_env", "check_hash"}

    def test_recover_never_touches_base_model(self, service, mem_doc_store):
        """§3.1: the BA explicitly excludes loading base-model documents."""
        base_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        derived_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch(), base_model_id=base_id)
        )
        # delete the base model's document: recovery must still succeed
        mem_doc_store.collection(MODELS).delete_one(base_id)
        recovered = service.recover_model(derived_id)
        assert recovered.recovery_depth == 0

    def test_missing_model_raises(self, service):
        with pytest.raises(ModelNotFoundError):
            service.recover_model("model-" + "0" * 32)

    def test_verification_catches_corruption(self, service, mem_doc_store, file_store):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        # tamper with the stored root hash
        document["merkle_root"] = "0" * 64
        mem_doc_store.collection(MODELS).replace_one(model_id, document)
        with pytest.raises(VerificationError):
            service.recover_model(model_id)

    def test_verification_skippable(self, service, mem_doc_store):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        document["merkle_root"] = "0" * 64
        mem_doc_store.collection(MODELS).replace_one(model_id, document)
        recovered = service.recover_model(model_id, verify=False)
        assert recovered.verified is None

    def test_environment_check_passes_on_same_machine(self, service):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        recovered = service.recover_model(model_id, check_env=True)
        assert recovered.timings["check_env"] > 0

    def test_environment_mismatch_detected(self, service, mem_doc_store):
        from repro.core import EnvironmentMismatchError

        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        env = mem_doc_store.collection(ENVIRONMENTS).get(document["environment_id"])
        env["framework_version"] = "0.0.0-other"
        mem_doc_store.collection(ENVIRONMENTS).replace_one(env["_id"], env)
        with pytest.raises(EnvironmentMismatchError):
            service.recover_model(model_id, check_env=True)


class TestStorage:
    def test_storage_dominated_by_parameters(self, service):
        model = make_tiny_cnn()
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        breakdown = service.model_save_size(model_id)
        parameter_bytes = sum(v.nbytes for v in model.state_dict().values())
        assert breakdown.files["parameters"] >= parameter_bytes
        # format overhead: JSON header with layer names/offsets
        assert breakdown.files["parameters"] < parameter_bytes * 1.2 + 4096
        assert breakdown.total > breakdown.files["parameters"]

    def test_storage_independent_of_base_relation(self, service):
        """§4.2: BA storage is independent of use case and model relation."""
        a = service.save_model(ModelSaveInfo(make_tiny_cnn(seed=1), tiny_arch()))
        b = service.save_model(
            ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch(), base_model_id=a)
        )
        size_a = service.model_save_size(a).files["parameters"]
        size_b = service.model_save_size(b).files["parameters"]
        assert size_a == size_b

    def test_saved_model_ids_listing(self, service):
        ids = {
            service.save_model(ModelSaveInfo(make_tiny_cnn(seed=i), tiny_arch()))
            for i in range(3)
        }
        assert set(service.saved_model_ids()) == ids

    def test_model_exists(self, service):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        assert service.model_exists(model_id)
        assert not service.model_exists("model-" + "f" * 32)
