"""Environment capture and compatibility checks."""

import pytest

from repro.core import (
    EnvironmentInfo,
    EnvironmentMismatchError,
    check_environment,
    collect_environment,
)


class TestCollection:
    def test_collect_returns_populated_snapshot(self):
        info = collect_environment()
        assert info.numpy_version
        assert info.python_version.count(".") == 2
        assert info.cpu_count >= 1
        assert isinstance(info.libraries, dict) and info.libraries
        assert "numpy" in info.libraries

    def test_framework_version_present(self):
        info = collect_environment()
        assert info.framework_version != ""

    def test_round_trip_via_dict(self):
        info = collect_environment()
        restored = EnvironmentInfo.from_dict(info.to_dict())
        assert restored == info


class TestComparison:
    def test_same_environment_passes(self):
        info = collect_environment()
        check_environment(info)  # compares against a fresh snapshot

    def test_differences_empty_for_equal(self):
        info = collect_environment()
        assert info.differences(info) == {}

    def test_framework_version_mismatch_detected(self):
        saved = collect_environment()
        changed = EnvironmentInfo.from_dict({**saved.to_dict(), "framework_version": "0.0.1"})
        with pytest.raises(EnvironmentMismatchError, match="framework_version"):
            check_environment(changed)

    def test_library_set_mismatch_detected(self):
        saved = collect_environment()
        libraries = dict(saved.libraries)
        libraries["fictional-package"] = "9.9"
        changed = EnvironmentInfo.from_dict({**saved.to_dict(), "libraries": libraries})
        with pytest.raises(EnvironmentMismatchError):
            check_environment(changed)

    def test_hostname_difference_is_not_strict(self):
        saved = collect_environment()
        changed = EnvironmentInfo.from_dict({**saved.to_dict(), "hostname": "other-machine"})
        check_environment(changed)  # informational field only

    def test_custom_field_selection(self):
        saved = collect_environment()
        changed = EnvironmentInfo.from_dict({**saved.to_dict(), "hostname": "other"})
        mismatches = saved.differences(changed, fields=("hostname",))
        assert list(mismatches) == ["hostname"]


class TestLockfiles:
    """ReproZip-style environment pinning (the paper's future work)."""

    def test_write_read_round_trip(self, tmp_path):
        from repro.core import read_lockfile, write_lockfile

        path = tmp_path / "env.lock"
        written = write_lockfile(path)
        loaded = read_lockfile(path)
        assert loaded == written

    def test_check_passes_on_same_machine(self, tmp_path):
        from repro.core import check_lockfile, write_lockfile

        path = tmp_path / "env.lock"
        write_lockfile(path)
        check_lockfile(path)

    def test_check_detects_drift(self, tmp_path):
        import json

        from repro.core import check_lockfile, write_lockfile

        path = tmp_path / "env.lock"
        write_lockfile(path)
        payload = json.loads(path.read_text())
        payload["libraries"]["phantom-package"] = "1.0"
        path.write_text(json.dumps(payload))
        with pytest.raises(EnvironmentMismatchError):
            check_lockfile(path)
