"""Tensor and state-dict hashing."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import state_dict_hashes, state_dict_root_hash, tensor_hash
from repro.core.hashing import combine_hashes
from tests.conftest import make_tiny_cnn


class TestTensorHash:
    def test_equal_arrays_equal_hashes(self):
        a = np.arange(10, dtype=np.float32)
        assert tensor_hash(a) == tensor_hash(a.copy())

    def test_single_element_change_changes_hash(self):
        a = np.zeros(100, dtype=np.float32)
        b = a.copy()
        b[50] = 1e-30
        assert tensor_hash(a) != tensor_hash(b)

    def test_dtype_matters(self):
        a = np.zeros(4, dtype=np.float32)
        assert tensor_hash(a) != tensor_hash(a.astype(np.float64))

    def test_shape_matters(self):
        a = np.zeros(6, dtype=np.float32)
        assert tensor_hash(a) != tensor_hash(a.reshape(2, 3))

    def test_non_contiguous_equals_contiguous(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert tensor_hash(a[:, ::2]) == tensor_hash(np.ascontiguousarray(a[:, ::2]))


class TestStateDictHashes:
    def test_order_and_keys_preserved(self):
        state = make_tiny_cnn().state_dict()
        hashes = state_dict_hashes(state)
        assert list(hashes) == list(state)

    def test_root_hash_stable_and_sensitive(self):
        model = make_tiny_cnn(seed=0)
        root = state_dict_root_hash(model.state_dict())
        assert root == state_dict_root_hash(model.state_dict())
        state = model.state_dict()
        state["5.bias"] = state["5.bias"] + 1
        assert state_dict_root_hash(state) != root


class TestCombine:
    def test_combine_order_sensitive(self):
        assert combine_hashes("a", "b") != combine_hashes("b", "a")

    def test_combine_is_pure(self):
        assert combine_hashes("x", "y") == combine_hashes("x", "y")


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float32,
        st.integers(1, 32),
        elements=st.floats(-1e6, 1e6, width=32),
    )
)
def test_property_hash_deterministic(array):
    assert tensor_hash(array) == tensor_hash(array.copy())
