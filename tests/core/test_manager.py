"""ModelManager: catalog, lineage, deletion, garbage collection."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    DependentModelsError,
    ModelManager,
    ModelNotFoundError,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_manager", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture
def setup(mem_doc_store, file_store):
    """Service + manager with a small saved chain: root -> a -> b, root -> c."""
    service = ParameterUpdateSaveService(mem_doc_store, file_store)
    manager = ModelManager(service)

    def perturb(model):
        derived = make_tiny_cnn()
        state = {k: v.copy() for k, v in model.state_dict().items()}
        state["5.bias"] = state["5.bias"] + 1.0
        derived.load_state_dict(state)
        return derived

    root = make_tiny_cnn(seed=1)
    root_id = service.save_model(ModelSaveInfo(root, tiny_arch(), use_case="U_1"))
    a = perturb(root)
    a_id = service.save_model(
        ModelSaveInfo(a, tiny_arch(), base_model_id=root_id, use_case="U_3-1-1")
    )
    b = perturb(a)
    b_id = service.save_model(
        ModelSaveInfo(b, tiny_arch(), base_model_id=a_id, use_case="U_3-1-2")
    )
    c = perturb(root)
    c_id = service.save_model(
        ModelSaveInfo(c, tiny_arch(), base_model_id=root_id, use_case="U_2")
    )
    return manager, {"root": root_id, "a": a_id, "b": b_id, "c": c_id}


class TestCatalog:
    def test_list_all_sorted_by_save_time(self, setup):
        manager, ids = setup
        records = manager.list_models()
        assert [r.model_id for r in records] == [ids["root"], ids["a"], ids["b"], ids["c"]]

    def test_query_filtering(self, setup):
        manager, ids = setup
        records = manager.find_by_use_case("U_3-1-1")
        assert [r.model_id for r in records] == [ids["a"]]

    def test_get_record_fields(self, setup):
        manager, ids = setup
        record = manager.get(ids["root"])
        assert record.is_root
        assert sorted(record.derived_model_ids) == sorted([ids["a"], ids["c"]])

    def test_get_missing_raises(self, setup):
        manager, _ = setup
        with pytest.raises(ModelNotFoundError):
            manager.get("model-" + "0" * 32)


class TestLineage:
    def test_lineage_walks_to_root(self, setup):
        manager, ids = setup
        chain = manager.lineage(ids["b"])
        assert [r.model_id for r in chain] == [ids["b"], ids["a"], ids["root"]]

    def test_descendants(self, setup):
        manager, ids = setup
        descendants = {r.model_id for r in manager.descendants(ids["root"])}
        assert descendants == {ids["a"], ids["b"], ids["c"]}
        assert manager.descendants(ids["b"]) == []

    def test_lineage_tree_rendering(self, setup):
        manager, ids = setup
        tree = manager.lineage_tree(ids["root"])
        assert ids["root"] in tree and ids["b"] in tree
        assert "U_3-1-2" in tree


class TestStorage:
    def test_storage_report_covers_all_models(self, setup):
        manager, ids = setup
        report = manager.storage_report()
        assert set(report) == set(ids.values())
        assert manager.total_storage_bytes() == sum(b.total for b in report.values())


class TestRecoverDelegation:
    def test_recover_through_manager(self, setup):
        manager, ids = setup
        recovered = manager.recover(ids["b"])
        assert recovered.verified is True
        assert recovered.recovery_depth == 2


class TestDeletion:
    def test_refuses_to_orphan_derived_models(self, setup):
        manager, ids = setup
        with pytest.raises(DependentModelsError):
            manager.delete_model(ids["root"])

    def test_leaf_deletion_removes_documents_and_files(self, setup):
        manager, ids = setup
        document = manager.documents.collection("models").get(ids["b"])
        update_file = document["update_file"]
        assert manager.files.exists(update_file)
        manager.delete_model(ids["b"])
        assert not manager.files.exists(update_file)
        with pytest.raises(ModelNotFoundError):
            manager.get(ids["b"])

    def test_force_deletes_despite_dependents(self, setup):
        manager, ids = setup
        manager.delete_model(ids["root"], force=True)
        with pytest.raises(ModelNotFoundError):
            manager.get(ids["root"])

    def test_environment_documents_cleaned(self, setup):
        manager, ids = setup
        before = manager.documents.collection("environments").count()
        manager.delete_model(ids["b"])
        assert manager.documents.collection("environments").count() == before - 1


class TestGarbageCollection:
    def test_gc_removes_orphans_only(self, setup):
        manager, ids = setup
        orphan = manager.files.save_bytes(b"leftover" * 100)
        stats = manager.garbage_collect()
        assert stats["files_removed"] == 1
        assert stats["bytes_freed"] == len(b"leftover" * 100)
        assert not manager.files.exists(orphan)
        # every model still recovers after gc
        recovered = manager.recover(ids["b"])
        assert recovered.verified is True

    def test_gc_on_clean_store_is_noop(self, setup):
        manager, _ = setup
        assert manager.garbage_collect() == {"files_removed": 0, "bytes_freed": 0}

    def test_gc_preserves_provenance_state_files(self, mem_doc_store, file_store, tmp_path):
        from repro.core import ProvenanceSaveService
        from repro.workloads import generate_dataset
        from repro.workloads.relations import TrainingRun

        service = ProvenanceSaveService(mem_doc_store, file_store, scratch_dir=tmp_path / "s")
        manager = ModelManager(service)
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        dataset_root = generate_dataset("co512", tmp_path / "data", scale=1 / 2048)
        run = TrainingRun(
            dataset_dir=dataset_root, number_epochs=1, number_batches=1,
            seed=2, image_size=8, num_classes=10,
        )
        model = make_tiny_cnn()
        model.load_state_dict(base.state_dict())
        run.execute(model)
        model_id = service.save_model(run.to_provenance_info(base_id, trained_model=model))
        stats = manager.garbage_collect()
        assert stats["files_removed"] == 0
        assert manager.recover(model_id).verified is True


class TestPromoteAndSquash:
    def test_promote_makes_model_self_contained(self, setup, mem_doc_store):
        manager, ids = setup
        manager.promote_to_snapshot(ids["b"])
        document = mem_doc_store.collection("models").get(ids["b"])
        assert document["parameters_file"]
        assert document["base_model"] is None
        assert document["promoted_from"] == ids["a"]
        # ancestors can now disappear without breaking recovery
        manager.delete_model(ids["a"])
        recovered = manager.recover(ids["b"])
        assert recovered.verified is True
        assert recovered.recovery_depth == 0

    def test_promote_preserves_exact_parameters(self, setup):
        manager, ids = setup
        before = manager.recover(ids["b"]).model.state_dict()
        manager.promote_to_snapshot(ids["b"])
        after = manager.recover(ids["b"]).model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_promote_snapshot_is_noop(self, setup, mem_doc_store):
        manager, ids = setup
        first = mem_doc_store.collection("models").get(ids["root"])
        manager.promote_to_snapshot(ids["root"])
        assert mem_doc_store.collection("models").get(ids["root"]) == first

    def test_promote_removes_update_file(self, setup, mem_doc_store):
        manager, ids = setup
        old_update = mem_doc_store.collection("models").get(ids["b"])["update_file"]
        manager.promote_to_snapshot(ids["b"])
        assert not manager.files.exists(old_update)

    def test_squash_deletes_exclusive_ancestors_only(self, setup, mem_doc_store):
        """root has two children (a-chain and c): squashing b may delete a
        but must keep root (c still needs it)."""
        manager, ids = setup
        deleted = manager.squash_chain(ids["b"])
        assert deleted == 1  # only 'a'
        with pytest.raises(ModelNotFoundError):
            manager.get(ids["a"])
        assert manager.get(ids["root"]) is not None  # kept: 'c' depends on it
        assert manager.recover(ids["b"]).verified is True
        assert manager.recover(ids["c"]).verified is True

    def test_squash_frees_storage_for_long_chains(self, mem_doc_store, file_store):
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        manager = ModelManager(service)
        model = make_tiny_cnn(seed=1)
        chain = [service.save_model(ModelSaveInfo(model, tiny_arch()))]
        state = {k: v.copy() for k, v in model.state_dict().items()}
        for level in range(5):
            state["5.bias"] = state["5.bias"] + 1.0
            derived = make_tiny_cnn()
            derived.load_state_dict(state)
            chain.append(
                service.save_model(
                    ModelSaveInfo(derived, tiny_arch(), base_model_id=chain[-1])
                )
            )
        before = file_store.total_bytes()
        assert manager.squash_chain(chain[-1]) == 5
        assert len(manager.list_models()) == 1
        assert file_store.total_bytes() < before
