"""Parameter update approach: pruned updates, recursive recovery (§3.2)."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    MerkleTree,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    extract_parameter_update,
)
from repro.core.errors import RecoveryError, SaveError
from repro.core.schema import APPROACH_PARAM_UPDATE, MODELS
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture round trips."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_param_update", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture
def service(mem_doc_store, file_store):
    return ParameterUpdateSaveService(mem_doc_store, file_store)


def perturb(model, layer_keys):
    """Return a same-architecture model with only ``layer_keys`` changed."""
    clone = make_tiny_cnn()
    state = {k: v.copy() for k, v in model.state_dict().items()}
    for key in layer_keys:
        state[key] = state[key] + 1.0
    clone.load_state_dict(state)
    return clone


class TestExtractParameterUpdate:
    def test_prunes_unchanged_layers(self):
        base = make_tiny_cnn(seed=1)
        derived = perturb(base, ["5.weight", "5.bias"])
        update, diff = extract_parameter_update(
            derived.state_dict(),
            MerkleTree.from_state_dict(derived.state_dict()),
            MerkleTree.from_state_dict(base.state_dict()),
        )
        assert set(update) == {"5.weight", "5.bias"}
        assert diff.changed_layers == ["5.weight", "5.bias"]

    def test_flat_mode_same_layers_more_comparisons(self):
        base = make_tiny_cnn(seed=1)
        derived = perturb(base, ["5.bias"])
        current = MerkleTree.from_state_dict(derived.state_dict())
        base_tree = MerkleTree.from_state_dict(base.state_dict())
        merkle_update, merkle_diff = extract_parameter_update(
            derived.state_dict(), current, base_tree, use_merkle=True
        )
        flat_update, flat_diff = extract_parameter_update(
            derived.state_dict(), current, base_tree, use_merkle=False
        )
        assert list(merkle_update) == list(flat_update)
        assert flat_diff.comparisons == len(base.state_dict())


class TestSave:
    def test_initial_save_is_full_snapshot_with_hashes(self, service, mem_doc_store):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        assert document["parameters_file"]
        assert document["layer_hashes"]  # always stored by the PUA

    def test_derived_save_stores_update_only(self, service, mem_doc_store, file_store):
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = perturb(base, ["5.weight"])
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )
        document = mem_doc_store.collection(MODELS).get(derived_id)
        assert "parameters_file" not in document
        assert document["update_file"]
        assert document["updated_layers"] == ["5.weight"]
        assert document["approach"] == APPROACH_PARAM_UPDATE

    def test_derived_save_reads_only_base_document(self, service, mem_doc_store, file_store):
        """§3.2: saving must not recover the base model's parameters."""
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        base_doc = mem_doc_store.collection(MODELS).get(base_id)
        # delete the base parameters file: the save must still succeed
        file_store.delete(base_doc["parameters_file"])
        derived = perturb(base, ["5.bias"])
        service.save_model(ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id))

    def test_save_against_hashless_base_rejected(self, service, mem_doc_store):
        base_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(base_id)
        del document["layer_hashes"]
        mem_doc_store.collection(MODELS).replace_one(base_id, document)
        with pytest.raises(SaveError, match="layer hashes"):
            service.save_model(
                ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch(), base_model_id=base_id)
            )

    def test_last_diff_exposes_comparison_count(self, service):
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = perturb(base, ["5.bias"])
        service.save_model(ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id))
        assert service.last_diff is not None
        assert service.last_diff.comparisons < len(base.state_dict()) + 5

    def test_storage_shrinks_with_update_size(self, service):
        """§4.2: partial updates store dramatically less than snapshots."""
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        partial = perturb(base, ["5.bias"])
        partial_id = service.save_model(
            ModelSaveInfo(partial, tiny_arch(), base_model_id=base_id)
        )
        full = make_tiny_cnn(seed=9)  # all layers differ
        full_id = service.save_model(
            ModelSaveInfo(full, tiny_arch(), base_model_id=base_id)
        )
        partial_bytes = service.model_save_size(partial_id).files["parameters"]
        full_bytes = service.model_save_size(full_id).files["parameters"]
        base_bytes = service.model_save_size(base_id).files["parameters"]
        assert partial_bytes < base_bytes / 10
        assert full_bytes == pytest.approx(base_bytes, rel=0.25)


class TestRecover:
    def test_single_level_round_trip(self, service):
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = perturb(base, ["5.weight", "1.running_mean"])
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )
        recovered = service.recover_model(derived_id)
        assert recovered.verified is True
        assert recovered.recovery_depth == 1
        for key, value in derived.state_dict().items():
            assert np.array_equal(value, recovered.model.state_dict()[key]), key

    def test_deep_chain_recovery(self, service):
        model = make_tiny_cnn(seed=1)
        model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
        expected = model
        for depth in range(4):
            expected = perturb(expected, ["5.bias"])
            model_id = service.save_model(
                ModelSaveInfo(expected, tiny_arch(), base_model_id=model_id)
            )
        recovered = service.recover_model(model_id)
        assert recovered.recovery_depth == 4
        assert np.array_equal(
            recovered.model.state_dict()["5.bias"], expected.state_dict()["5.bias"]
        )

    def test_update_priority_on_merge_conflict(self, service):
        """§3.2: merges prioritize the derived model's parameters."""
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = perturb(base, ["5.bias"])
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )
        recovered = service.recover_model(derived_id)
        assert np.array_equal(
            recovered.model.state_dict()["5.bias"], derived.state_dict()["5.bias"]
        )
        assert not np.array_equal(
            recovered.model.state_dict()["5.bias"], base.state_dict()["5.bias"]
        )

    def test_cycle_detection(self, service, mem_doc_store):
        base = make_tiny_cnn(seed=1)
        a = service.save_model(ModelSaveInfo(base, tiny_arch()))
        b = service.save_model(
            ModelSaveInfo(perturb(base, ["5.bias"]), tiny_arch(), base_model_id=a)
        )
        # corrupt the chain into a cycle
        doc_a = mem_doc_store.collection(MODELS).get(a)
        doc_a["base_model"] = b
        mem_doc_store.collection(MODELS).replace_one(a, doc_a)
        with pytest.raises(RecoveryError, match="cycle"):
            service.base_chain(b)

    def test_missing_base_ref_fails_cleanly(self, service, mem_doc_store):
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived_id = service.save_model(
            ModelSaveInfo(perturb(base, ["5.bias"]), tiny_arch(), base_model_id=base_id)
        )
        mem_doc_store.collection(MODELS).delete_one(base_id)
        from repro.core import ModelNotFoundError

        with pytest.raises(ModelNotFoundError):
            service.recover_model(derived_id)


class TestChainScenario:
    def test_evaluation_flow_chain_partial(self, partial_chain, mem_doc_store, file_store):
        """Full Fig. 6 chain through the PUA: every model recovers exactly."""
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        arch = partial_chain.config.architecture_ref()
        ids = {}
        for step in partial_chain.steps:
            base_id = (
                ids[partial_chain.steps[step.base_index].use_case]
                if step.base_index is not None
                else None
            )
            ids[step.use_case] = service.save_model(
                ModelSaveInfo(
                    partial_chain.build_model(step.use_case),
                    arch,
                    base_model_id=base_id,
                    use_case=step.use_case,
                )
            )
        # partial updates must be far smaller than the initial snapshot
        initial = service.model_save_size(ids["U_1"]).files["parameters"]
        update = service.model_save_size(ids["U_3-1-1"]).files["parameters"]
        assert update < initial / 2
        # the deepest model recovers exactly
        expected = partial_chain.build_model("U_3-2-2").state_dict()
        recovered = service.recover_model(ids["U_3-2-2"])
        assert recovered.recovery_depth == 3
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)
