"""Recovery-chain prefetch: read-ahead into the shared hot-chunk cache."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    ChainPrefetcher,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.core.schema import MODELS
from repro.filestore import FileStore, NetworkModel, SimulatedNetworkFileStore
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_prefetch", "build_probe_model", {"num_classes": 10}
    )


def build_pua_chain(service, depth=4):
    """A PUA chain; returns (ids, expected state dicts)."""
    model = make_tiny_cnn(seed=1)
    ids = [service.save_model(ModelSaveInfo(model, tiny_arch()))]
    states = [model.state_dict()]
    for level in range(depth - 1):
        derived = make_tiny_cnn()
        state = {k: v.copy() for k, v in states[-1].items()}
        state["5.bias"] = state["5.bias"] + level + 1.0
        derived.load_state_dict(state)
        ids.append(
            service.save_model(ModelSaveInfo(derived, tiny_arch(), base_model_id=ids[-1]))
        )
        states.append(derived.state_dict())
    return ids, states


@pytest.fixture
def network_store(tmp_path):
    link = NetworkModel(bandwidth_bytes_per_s=1_000_000, latency_s=0.01)
    return SimulatedNetworkFileStore(
        tmp_path / "files", link, workers=2, pipeline_depth=4, chunk_cache=1 << 20
    )


class TestUsability:
    def test_requires_a_chunk_cache(self, mem_doc_store, tmp_path):
        plain = FileStore(tmp_path / "plain")  # no cache: nowhere to land
        assert not ChainPrefetcher(mem_doc_store, plain).usable()
        cached = FileStore(tmp_path / "cached", chunk_cache=1 << 20)
        assert ChainPrefetcher(mem_doc_store, cached).usable()

    def test_invalid_workers(self, mem_doc_store, tmp_path):
        store = FileStore(tmp_path / "files", chunk_cache=1 << 20)
        with pytest.raises(ValueError):
            ChainPrefetcher(mem_doc_store, store, workers=0)

    def test_noop_without_cache_instead_of_wasted_fetches(
        self, mem_doc_store, tmp_path
    ):
        plain = FileStore(tmp_path / "plain")
        service = ParameterUpdateSaveService(mem_doc_store, plain)
        ids, _ = build_pua_chain(service, depth=2)
        with ChainPrefetcher(mem_doc_store, plain) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            assert prefetcher.stats()["files_prefetched"] == 0


class TestPrefetchFile:
    def test_warms_the_cache_so_recovery_is_free(self, mem_doc_store, network_store):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, states = build_pua_chain(service, depth=1)
        document = mem_doc_store.collection(MODELS).get(ids[0])
        manifest_id = document["parameters_file"]

        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            prefetcher.prefetch_file(manifest_id)
            prefetcher.drain()
            assert prefetcher.stats()["chunks_prefetched"] > 0

        network_store.reset_accounting()
        state = network_store.recover_state_chunks(manifest_id, workers=2)
        assert all(np.array_equal(state[k], states[0][k]) for k in states[0])
        # every chunk came from the hot cache; only the manifest re-crossed
        assert network_store.round_trips == 1

    def test_non_manifest_ids_are_ignored(self, mem_doc_store, network_store):
        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            prefetcher.prefetch_file("someblob.bin")
            prefetcher.prefetch_file(None)
            prefetcher.drain()
            assert prefetcher.stats()["files_prefetched"] == 0

    def test_errors_are_swallowed_and_counted(self, mem_doc_store, network_store):
        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            prefetcher.prefetch_file("no-such-file.manifest")
            prefetcher.drain()
            assert prefetcher.stats()["errors"] == 1


class TestPrefetchChain:
    def test_whole_chain_lands_in_the_cache(self, mem_doc_store, network_store):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, states = build_pua_chain(service, depth=4)

        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            # one full snapshot + three diffs
            assert prefetcher.stats()["files_prefetched"] == 4

        network_store.reset_accounting()
        recovered = service.recover_model(ids[-1]).model.state_dict()
        assert all(np.array_equal(recovered[k], states[-1][k]) for k in states[-1])
        # chunk transfers were all pre-paid; what remains is manifests,
        # architecture code, and metadata blobs — no pipelined batches
        assert network_store.round_trips_saved == 0

    def test_chain_walk_stops_on_missing_document(self, mem_doc_store, network_store):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, _ = build_pua_chain(service, depth=3)
        # break the chain: the root document disappears
        mem_doc_store.collection(MODELS).delete_one(ids[0])
        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            # the two surviving levels still prefetched, nothing raised
            assert prefetcher.stats()["files_prefetched"] == 2

    def test_depth_cap_bounds_the_walk(self, mem_doc_store, network_store):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, _ = build_pua_chain(service, depth=5)
        with ChainPrefetcher(
            mem_doc_store, network_store, max_chain_depth=2
        ) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            assert prefetcher.stats()["files_prefetched"] == 2

    def test_duplicate_requests_coalesce_while_inflight(
        self, mem_doc_store, network_store
    ):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, _ = build_pua_chain(service, depth=3)
        with ChainPrefetcher(mem_doc_store, network_store) as prefetcher:
            for _ in range(5):
                prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            # at most one pass over the 3-level chain (scheduling may let a
            # later request through after the first completes, not before)
            assert prefetcher.stats()["files_prefetched"] % 3 == 0


class TestServiceIntegration:
    def test_recovery_with_prefetcher_is_bitwise_identical(
        self, mem_doc_store, network_store
    ):
        prefetcher = ChainPrefetcher(mem_doc_store, network_store)
        service = ParameterUpdateSaveService(
            mem_doc_store, network_store, prefetcher=prefetcher
        )
        ids, states = build_pua_chain(service, depth=4)
        with prefetcher:
            for model_id, state in zip(ids, states):
                recovered = service.recover_model(model_id).model.state_dict()
                assert all(np.array_equal(recovered[k], state[k]) for k in state)
            prefetcher.drain()
            assert prefetcher.stats()["errors"] == 0

    def test_closed_prefetcher_schedules_nothing(self, mem_doc_store, network_store):
        service = ParameterUpdateSaveService(mem_doc_store, network_store)
        ids, _ = build_pua_chain(service, depth=2)
        prefetcher = ChainPrefetcher(mem_doc_store, network_store)
        prefetcher.close()
        prefetcher.prefetch_chain(ids[-1])  # must not raise or leak tasks
        assert prefetcher.stats()["inflight"] == 0


class TestRetryPropagation:
    def test_shared_retry_absorbs_transient_fetch_failures(
        self, mem_doc_store, tmp_path
    ):
        from repro.faults import FaultInjector
        from repro.retry import RetryPolicy

        store = FileStore(tmp_path / "files", chunk_cache=1 << 20)
        service = ParameterUpdateSaveService(mem_doc_store, store)
        ids, _ = build_pua_chain(service, depth=3)

        # the link turns flaky only once the chain exists on disk; each
        # retried fetch makes forward progress through the chunk cache,
        # so a generous attempt budget always converges
        store.faults = FaultInjector(seed=21, error_rate=0.2,
                                     max_consecutive_failures=3)
        retry = RetryPolicy(max_attempts=25, base_delay_s=0.0, sleep=lambda s: None)
        with ChainPrefetcher(mem_doc_store, store, retry=retry) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            stats = prefetcher.stats()
        assert stats["errors"] == 0
        assert stats["chunks_prefetched"] > 0
        assert retry.retries_taken > 0

    def test_without_a_policy_failures_still_only_count(self, mem_doc_store, tmp_path):
        from repro.faults import FaultInjector

        store = FileStore(tmp_path / "files", chunk_cache=1 << 20)
        service = ParameterUpdateSaveService(mem_doc_store, store)
        ids, _ = build_pua_chain(service, depth=2)
        store.faults = FaultInjector(seed=5, error_rate=1.0)

        with ChainPrefetcher(mem_doc_store, store) as prefetcher:
            prefetcher.prefetch_chain(ids[-1])
            prefetcher.drain()
            assert prefetcher.stats()["errors"] > 0  # swallowed, never raised

    def test_make_service_wires_the_shared_policy_into_the_prefetcher(self, tmp_path):
        from repro.distsim import SharedStores, make_service
        from repro.retry import RetryPolicy

        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda s: None)
        stores = SharedStores.at(tmp_path, retry=retry, chunk_cache_bytes=1 << 20)
        service = make_service("param_update", stores, prefetch_workers=1)
        try:
            assert service.prefetcher is not None
            assert service.prefetcher.retry is retry
        finally:
            service.prefetcher.close()
