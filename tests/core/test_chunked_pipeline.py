"""The content-addressed save/recover pipeline wired through the services.

Covers the PR's acceptance criteria: per-layer hashes computed exactly
once per save (no whole-blob re-hash on the chunked path), bitwise
round-trip equality including over ``SimulatedNetworkFileStore``, and
chunk dedup across a chain of full snapshots.
"""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.core import hashing
from repro.docstore import DocumentStore
from repro.filestore import FileStore, NetworkModel, SimulatedNetworkFileStore
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_chunked_pipeline", "build_probe_model", {"num_classes": 10}
    )


def perturbed(base_model, *, level):
    """A copy of ``base_model`` with only the final bias changed."""
    model = make_tiny_cnn()
    state = {k: v.copy() for k, v in base_model.state_dict().items()}
    state["5.bias"] = state["5.bias"] + float(level)
    model.load_state_dict(state)
    return model


class TestHashOncePerSave:
    def test_chunked_save_hashes_each_layer_exactly_once(
        self, mem_doc_store, file_store, monkeypatch
    ):
        service = BaselineSaveService(mem_doc_store, file_store, chunked=True)
        model = make_tiny_cnn(seed=5)
        n_layers = len(model.state_dict())

        calls = {"tensor_hash": 0}
        real_tensor_hash = hashing.tensor_hash

        def counting_tensor_hash(array):
            calls["tensor_hash"] += 1
            return real_tensor_hash(array)

        monkeypatch.setattr(hashing, "tensor_hash", counting_tensor_hash)
        service.save_model(ModelSaveInfo(model, tiny_arch(), store_checksums=True))
        assert calls["tensor_hash"] == n_layers

    def test_chunked_save_never_rehashes_the_whole_parameter_blob(
        self, mem_doc_store, file_store, monkeypatch
    ):
        """``save_bytes`` (which SHA-256s its whole payload) must only see
        small metadata blobs on the chunked path — never the serialized
        parameter payload."""
        service = BaselineSaveService(mem_doc_store, file_store, chunked=True)
        model = make_tiny_cnn(seed=6)
        param_bytes = sum(a.nbytes for a in model.state_dict().values())

        blobs = []
        real_save_bytes = FileStore.save_bytes

        def recording_save_bytes(self, data, suffix=""):
            blobs.append((len(data), suffix))
            return real_save_bytes(self, data, suffix)

        monkeypatch.setattr(FileStore, "save_bytes", recording_save_bytes)
        service.save_model(ModelSaveInfo(model, tiny_arch(), store_checksums=True))
        assert blobs, "expected metadata blobs (code, manifest)"
        # the serialized parameter payload never goes through save_bytes;
        # only the architecture code and a small manifest do
        assert all(suffix != ".params" for _, suffix in blobs)
        non_code = [size for size, suffix in blobs if suffix != ".py"]
        assert max(non_code) < param_bytes

    def test_monolithic_path_still_serializes_one_blob(
        self, mem_doc_store, file_store, monkeypatch
    ):
        service = BaselineSaveService(mem_doc_store, file_store, chunked=False)
        model = make_tiny_cnn(seed=6)
        param_bytes = sum(a.nbytes for a in model.state_dict().values())

        blobs = []
        real_save_bytes = FileStore.save_bytes

        def recording_save_bytes(self, data, suffix=""):
            blobs.append((len(data), suffix))
            return real_save_bytes(self, data, suffix)

        monkeypatch.setattr(FileStore, "save_bytes", recording_save_bytes)
        service.save_model(ModelSaveInfo(model, tiny_arch()))
        assert max(size for size, suffix in blobs if suffix == ".params") > param_bytes


class TestRoundTrip:
    @pytest.mark.parametrize("chunked", [True, False])
    def test_baseline_round_trip_bitwise(self, mem_doc_store, file_store, chunked):
        service = BaselineSaveService(mem_doc_store, file_store, chunked=chunked)
        model = make_tiny_cnn(seed=7)
        model_id = service.save_model(
            ModelSaveInfo(model, tiny_arch(), store_checksums=True)
        )
        recovered = service.recover_model(model_id, verify=True)
        assert recovered.verified is True
        state, out = model.state_dict(), recovered.model.state_dict()
        for key in state:
            assert np.array_equal(state[key], out[key])

    def test_pua_chain_round_trip_over_network_store(self, mem_doc_store, tmp_path):
        files = SimulatedNetworkFileStore(
            tmp_path / "net-files", NetworkModel(bandwidth_bytes_per_s=1e9), sleep=False
        )
        service = ParameterUpdateSaveService(mem_doc_store, files, chunked=True)
        root_model = make_tiny_cnn(seed=8)
        ids = [service.save_model(ModelSaveInfo(root_model, tiny_arch()))]
        models = [root_model]
        for level in range(1, 4):
            derived = perturbed(models[-1], level=level)
            ids.append(
                service.save_model(
                    ModelSaveInfo(derived, tiny_arch(), base_model_id=ids[-1])
                )
            )
            models.append(derived)
        for model_id, model in zip(ids, models):
            recovered = service.recover_model(model_id, verify=True)
            assert recovered.verified is True  # Merkle root matches
            state, out = model.state_dict(), recovered.model.state_dict()
            for key in state:
                assert np.array_equal(state[key], out[key])

    def test_chunked_and_monolithic_documents_coexist(self, mem_doc_store, file_store):
        """Format compatibility: one catalog can mix both layouts."""
        chunked = BaselineSaveService(mem_doc_store, file_store, chunked=True)
        legacy = BaselineSaveService(mem_doc_store, file_store, chunked=False)
        model = make_tiny_cnn(seed=9)
        id_chunked = chunked.save_model(ModelSaveInfo(model, tiny_arch()))
        id_legacy = legacy.save_model(ModelSaveInfo(model, tiny_arch()))
        # either service instance recovers either document
        for service in (chunked, legacy):
            for model_id in (id_chunked, id_legacy):
                out = service.recover_model(model_id).model.state_dict()
                for key, value in model.state_dict().items():
                    assert np.array_equal(out[key], value)


class TestDedup:
    def snapshot_chain(self, service, length=5):
        base = make_tiny_cnn(seed=11)
        ids = [service.save_model(ModelSaveInfo(base, tiny_arch()))]
        current = base
        for level in range(1, length):
            current = perturbed(current, level=level)
            ids.append(service.save_model(ModelSaveInfo(current, tiny_arch())))
        return ids

    def test_chain_of_snapshots_dedups_unchanged_layers(self, mem_doc_store, tmp_path):
        chunked_files = FileStore(tmp_path / "chunked")
        mono_files = FileStore(tmp_path / "mono")
        self.snapshot_chain(
            BaselineSaveService(DocumentStore(), chunked_files, chunked=True)
        )
        self.snapshot_chain(
            BaselineSaveService(DocumentStore(), mono_files, chunked=False)
        )

        def param_storage(store):
            # exclude the per-save architecture code blobs, which dominate
            # a tiny model's parameters and are identical in both stores
            code = sum(store.size(f) for f in store.file_ids() if f.endswith(".py"))
            return store.total_bytes() - code

        # partially-updated snapshots share all but one layer: the chunked
        # store keeps one physical copy of every unchanged layer
        assert param_storage(chunked_files) < 0.7 * param_storage(mono_files)

    def test_delete_and_gc_reclaim_chunks(self, mem_doc_store, file_store):
        service = BaselineSaveService(mem_doc_store, file_store, chunked=True)
        ids = self.snapshot_chain(service, length=3)
        manager = ModelManager(service)
        for model_id in ids:
            manager.delete_model(model_id, force=True)
        stats = manager.garbage_collect()
        assert len(file_store.chunks) == 0
        assert stats["files_removed"] == 0  # deletes already cleaned up
