"""Learning-rate schedules through the provenance system (Fig. 5 shape)."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    ModelSaveInfo,
    ProvenanceSaveService,
)
from repro.core.schema import TRAIN_INFO, WRAPPERS
from repro.workloads import generate_dataset
from repro.workloads.relations import TrainingRun
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_scheduler_provenance", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    return generate_dataset("co512", tmp_path_factory.mktemp("sched-data"), scale=1 / 2048)


def scheduled_run(dataset_root, **overrides):
    defaults = dict(
        dataset_dir=dataset_root,
        number_epochs=3,
        number_batches=1,
        seed=5,
        image_size=8,
        num_classes=10,
        learning_rate=0.5,
        scheduler_class="repro.nn.schedulers.StepLR",
        scheduler_kwargs={"step_size": 1, "gamma": 0.1},
    )
    defaults.update(overrides)
    return TrainingRun(**defaults)


class TestScheduledTraining:
    def test_scheduler_decays_learning_rate_during_training(self, dataset_root):
        run = scheduled_run(dataset_root)
        model = make_tiny_cnn(num_classes=10)
        run.execute(model)
        # 3 epochs with step_size=1, gamma=0.1: 0.5 -> 0.0005
        service = run.build_train_service()
        assert run.scheduler_state_bytes is not None

    def test_scheduled_and_unscheduled_runs_differ(self, dataset_root):
        base_state = make_tiny_cnn(num_classes=10, seed=3).state_dict()

        def run_with(scheduler_class):
            model = make_tiny_cnn(num_classes=10)
            model.load_state_dict(base_state)
            run = scheduled_run(dataset_root, scheduler_class=scheduler_class)
            if scheduler_class is None:
                run.scheduler_kwargs = None
            run.execute(model)
            return model.state_dict()

        scheduled = run_with("repro.nn.schedulers.StepLR")
        unscheduled = run_with(None)
        assert any(
            not np.array_equal(scheduled[k], unscheduled[k]) for k in scheduled
        ), "a decaying schedule must change the training trajectory"

    def test_mpa_replay_with_scheduler_is_bitwise(
        self, dataset_root, mem_doc_store, file_store, tmp_path
    ):
        """The headline check: a scheduled training run replays exactly."""
        service = ProvenanceSaveService(
            mem_doc_store, file_store, scratch_dir=tmp_path / "scratch"
        )
        base = make_tiny_cnn(num_classes=10, seed=3)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        model = make_tiny_cnn(num_classes=10)
        model.load_state_dict(base.state_dict())
        run = scheduled_run(dataset_root)
        run.execute(model)
        model_id = service.save_model(
            run.to_provenance_info(base_id, trained_model=model, use_case="U_3-1-1")
        )

        # three wrapper documents now exist: dataset, optimizer, scheduler
        assert mem_doc_store.collection(WRAPPERS).count() == 3
        train_document = mem_doc_store.collection(TRAIN_INFO).find()[0]
        assert train_document["scheduler_wrapper"]

        recovered = service.recover_model(model_id)
        assert recovered.verified is True
        expected = model.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_chain_cache_round_trip_preserves_scheduler(self, dataset_root):
        run = scheduled_run(dataset_root)
        run.execute(make_tiny_cnn(num_classes=10))
        restored = TrainingRun.from_dict(run.to_dict())
        assert restored.scheduler_class == run.scheduler_class
        assert restored.scheduler_kwargs == run.scheduler_kwargs
        assert restored.scheduler_state_bytes == run.scheduler_state_bytes
