"""fsck: verify-and-repair across documents, files, chunks, refcounts."""

import numpy as np
import pytest

from repro import cli
from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
)
from repro.core.schema import ENVIRONMENTS
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_fsck", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture(params=["files", "segments"])
def file_store(tmp_path, request):
    """Override the global fixture: fsck must hold on both chunk layouts."""
    return FileStore(tmp_path / "files", layout=request.param)


@pytest.fixture
def setup(mem_doc_store, file_store):
    service = BaselineSaveService(mem_doc_store, file_store)
    manager = ModelManager(service)
    model = make_tiny_cnn(seed=1)
    model_id = service.save_model(ModelSaveInfo(model, tiny_arch(), use_case="U_1"))
    return manager, service, file_store, model_id, model


def kinds(report):
    return {issue.kind for issue in report.issues}


def destroy_chunk(files, digest):
    """Layout-agnostic data loss: drop the stored payload out from under
    the refcounts (unlink for file-per-chunk, index removal for segments)."""
    files.chunks.drop(digest)


def flip_chunk_byte(files, digest):
    """Layout-agnostic bit rot: flip the first stored payload byte in place."""
    path, offset, length = files.chunks.locate(digest)
    assert length > 0
    with open(path, "r+b") as fileobj:
        fileobj.seek(offset)
        byte = fileobj.read(1)
        fileobj.seek(offset)
        fileobj.write(bytes([byte[0] ^ 0xFF]))


class TestFsckDetectAndRepair:
    def test_clean_catalog_is_clean(self, setup):
        manager, *_ = setup
        report = manager.fsck()
        assert report.clean
        assert report.checked_models == 1
        assert report.checked_chunks > 0

    def test_orphan_file_is_removed(self, setup):
        manager, _, files, _, _ = setup
        orphan = files.save_bytes(b"debris from a pre-journal crash")
        report = manager.fsck()
        assert kinds(report) == {"orphan_file"}
        assert not report.unrepaired
        assert not files.exists(orphan)
        assert manager.fsck().clean

    def test_orphan_chunk_is_removed(self, setup):
        manager, _, files, _, _ = setup
        files.chunks.put("deadbeef" * 4, b"unreferenced payload")
        report = manager.fsck()
        assert kinds(report) == {"orphan_chunk"}
        assert not report.unrepaired
        assert not files.chunks.has("deadbeef" * 4)
        assert manager.fsck().clean

    def test_leaked_refcount_is_reconciled(self, setup):
        manager, _, files, _, _ = setup
        digest = files.chunks.chunk_ids()[0]
        before = files.chunks.refcount(digest)
        files.chunks.add_refs([digest])  # leak one reference
        report = manager.fsck()
        assert kinds(report) == {"refcount_mismatch"}
        assert not report.unrepaired
        assert files.chunks.refcount(digest) == before
        assert manager.fsck().clean

    def test_deflated_refcount_is_reconciled(self, setup):
        manager, service, files, _, model = setup
        # a second identical save dedups every chunk: refcounts go up by one
        service.save_model(ModelSaveInfo(model, tiny_arch(), use_case="U_2"))
        digest = files.chunks.chunk_ids()[0]
        before = files.chunks.refcount(digest)
        assert before >= 2
        files.chunks.release_refs([digest])  # would let gc eat a live chunk
        report = manager.fsck()
        assert "refcount_mismatch" in kinds(report)
        assert not report.unrepaired
        assert files.chunks.refcount(digest) == before

    def test_missing_chunk_is_unrepairable(self, setup):
        manager, service, files, model_id, model = setup
        digest = files.chunks.chunk_ids()[0]
        destroy_chunk(files, digest)
        report = manager.fsck()
        assert "missing_chunk" in kinds(report)
        assert report.unrepaired, "data loss must be reported, not hidden"

    def test_corrupt_chunk_is_detected(self, setup):
        manager, _, files, _, _ = setup
        digest = files.chunks.chunk_ids()[0]
        flip_chunk_byte(files, digest)
        report = manager.fsck()
        assert "corrupt_chunk" in kinds(report)
        assert report.unrepaired

    def test_corrupt_chunk_ignored_without_verify(self, setup):
        manager, _, files, _, _ = setup
        digest = files.chunks.chunk_ids()[0]
        flip_chunk_byte(files, digest)
        assert manager.fsck(verify_chunks=False).clean

    def test_orphan_environment_document_is_removed(self, setup):
        manager, service, *_ = setup
        service.documents.collection(ENVIRONMENTS).insert_one(
            {"_id": "env-orphan", "python_version": "9.9"}
        )
        report = manager.fsck()
        assert kinds(report) == {"orphan_document"}
        assert not report.unrepaired
        with pytest.raises(KeyError):
            service.documents.collection(ENVIRONMENTS).get("env-orphan")

    def test_missing_environment_document_is_reported(self, setup):
        manager, service, _, model_id, _ = setup
        document = service.documents.collection("models").get(model_id)
        service.documents.collection(ENVIRONMENTS).delete_one(
            document["environment_id"]
        )
        report = manager.fsck()
        assert "missing_document" in kinds(report)
        assert report.unrepaired

    def test_repair_false_reports_without_touching(self, setup):
        manager, _, files, _, _ = setup
        orphan = files.save_bytes(b"leave me for the report")
        report = manager.fsck(repair=False)
        assert kinds(report) == {"orphan_file"}
        assert report.unrepaired
        assert files.exists(orphan)  # nothing was touched

    def test_model_survives_repair(self, setup):
        manager, service, files, model_id, model = setup
        files.save_bytes(b"orphan one")
        files.chunks.put("cafebabe" * 4, b"orphan two")
        assert not manager.fsck().unrepaired
        recovered = service.recover_model(model_id)
        for key, value in model.state_dict().items():
            assert np.array_equal(value, recovered.model.state_dict()[key]), key


class TestFsckCli:
    @pytest.fixture
    def disk_setup(self, tmp_path):
        docs_dir = str(tmp_path / "docs")
        files_dir = str(tmp_path / "files")
        files = FileStore(files_dir)
        service = BaselineSaveService(DocumentStore(docs_dir), files)
        model_id = service.save_model(
            ModelSaveInfo(make_tiny_cnn(seed=2), tiny_arch(), use_case="U_1")
        )
        return docs_dir, files_dir, files, model_id

    def run_cli(self, *argv):
        return cli.main(list(argv))

    def test_clean_store_exits_zero(self, disk_setup, capsys):
        docs_dir, files_dir, _, _ = disk_setup
        assert self.run_cli("--docs", docs_dir, "--files", files_dir, "fsck") == 0
        assert "no issues" in capsys.readouterr().out

    def test_repairable_damage_exits_zero(self, disk_setup, capsys):
        docs_dir, files_dir, files, _ = disk_setup
        files.save_bytes(b"orphan blob")
        assert self.run_cli("--docs", docs_dir, "--files", files_dir, "fsck") == 0
        out = capsys.readouterr().out
        assert "[repaired] orphan_file" in out

    def test_data_loss_exits_nonzero(self, disk_setup, capsys):
        docs_dir, files_dir, files, _ = disk_setup
        digest = files.chunks.chunk_ids()[0]
        destroy_chunk(files, digest)
        assert self.run_cli("--docs", docs_dir, "--files", files_dir, "fsck") == 1
        assert "[UNREPAIRED] missing_chunk" in capsys.readouterr().out

    def test_no_repair_flag_leaves_damage(self, disk_setup, capsys):
        docs_dir, files_dir, files, _ = disk_setup
        orphan = files.save_bytes(b"orphan blob")
        code = self.run_cli(
            "--docs", docs_dir, "--files", files_dir, "fsck", "--no-repair"
        )
        assert code == 1
        assert files.exists(orphan)
