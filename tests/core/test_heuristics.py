"""Adaptive approach selection (paper §4.7)."""

import pytest

from repro.core import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
    CostModel,
    ScenarioProfile,
    recommend_approach,
    select_approach,
)


def profile(**overrides):
    defaults = dict(
        model_bytes=100_000_000,
        dataset_bytes=70_000_000,
        updated_fraction=1.0,
        train_seconds=60.0,
    )
    defaults.update(overrides)
    return ScenarioProfile(**defaults)


class TestSimpleHeuristic:
    def test_large_dataset_small_update_prefers_pua(self):
        """Paper: 'if the dataset is larger than the model, the PUA is the
        preferred choice' (partial updates)."""
        scenario = profile(dataset_bytes=500_000_000, updated_fraction=0.05)
        assert recommend_approach(scenario) == APPROACH_PARAM_UPDATE

    def test_nlp_shape_prefers_mpa(self):
        """Paper: large models, small datasets (e.g. NLP) -> MPA."""
        scenario = profile(model_bytes=1_000_000_000, dataset_bytes=10_000_000)
        assert recommend_approach(scenario) == APPROACH_PROVENANCE

    def test_externally_managed_dataset_makes_mpa_free(self):
        scenario = profile(
            dataset_bytes=10**12, dataset_externally_managed=True, updated_fraction=0.5
        )
        assert recommend_approach(scenario) == APPROACH_PROVENANCE

    def test_full_update_large_dataset_best_is_pua_or_ba(self):
        scenario = profile(updated_fraction=1.0, dataset_bytes=10**12)
        assert recommend_approach(scenario) in (APPROACH_BASELINE, APPROACH_PARAM_UPDATE)


class TestCostModel:
    def test_estimates_cover_all_approaches(self):
        estimates = CostModel().estimate(profile())
        assert {e.approach for e in estimates} == {
            APPROACH_BASELINE,
            APPROACH_PARAM_UPDATE,
            APPROACH_PROVENANCE,
        }

    def test_ba_recover_independent_of_depth(self):
        model = CostModel()
        shallow = {e.approach: e for e in model.estimate(profile(), chain_depth=1)}
        deep = {e.approach: e for e in model.estimate(profile(), chain_depth=20)}
        assert shallow[APPROACH_BASELINE].recover_seconds == deep[
            APPROACH_BASELINE
        ].recover_seconds

    def test_pua_and_mpa_recover_grow_with_depth(self):
        model = CostModel()
        shallow = {e.approach: e for e in model.estimate(profile(), chain_depth=1)}
        deep = {e.approach: e for e in model.estimate(profile(), chain_depth=20)}
        for approach in (APPROACH_PARAM_UPDATE, APPROACH_PROVENANCE):
            assert deep[approach].recover_seconds > shallow[approach].recover_seconds

    def test_mpa_recover_dominated_by_training(self):
        estimate = {
            e.approach: e
            for e in CostModel().estimate(profile(train_seconds=3600), chain_depth=3)
        }[APPROACH_PROVENANCE]
        assert estimate.recover_seconds > 3 * 3600


class TestConstrainedSelection:
    def test_storage_bound_excludes_baseline(self):
        scenario = profile(updated_fraction=0.02, dataset_bytes=10**12)
        choice = select_approach(scenario, max_storage_bytes=10_000_000)
        assert choice.approach == APPROACH_PARAM_UPDATE

    def test_ttr_bound_excludes_mpa(self):
        scenario = profile(
            model_bytes=10**9, dataset_bytes=1, train_seconds=10_000, updated_fraction=1.0
        )
        choice = select_approach(scenario, max_recover_seconds=60)
        assert choice.approach != APPROACH_PROVENANCE

    def test_infeasible_constraints_raise(self):
        with pytest.raises(ValueError, match="no approach"):
            select_approach(profile(), max_storage_bytes=1, max_recover_seconds=1e-9)

    def test_ttr_priority_selects_baseline(self):
        """Paper: 'if the TTR has the highest priority, the BA is the
        preferred choice'."""
        scenario = profile(updated_fraction=0.5, recovers_per_save=1.0)
        choice = select_approach(
            scenario,
            chain_depth=10,
            storage_weight=0.0,
            recover_weight=1.0,
        )
        assert choice.approach == APPROACH_BASELINE


class TestValidation:
    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            profile(model_bytes=0)
        with pytest.raises(ValueError):
            profile(updated_fraction=1.5)
