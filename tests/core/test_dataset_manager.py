"""Dataset compression, storage, and recovery."""

import io
import zipfile

import pytest

from repro.core import CODEC_DEFLATE, CODEC_STORED, DatasetManager


@pytest.fixture
def dataset_dir(tmp_path):
    root = tmp_path / "dataset"
    (root / "nested").mkdir(parents=True)
    (root / "manifest.json").write_text('{"name": "tiny"}')
    (root / "labels.npy").write_bytes(b"\x00" * 256)
    (root / "nested" / "shard.npy").write_bytes(bytes(range(256)) * 8)
    return root


class TestCompression:
    def test_archive_contains_all_files(self, dataset_dir, file_store):
        manager = DatasetManager(file_store)
        archive = zipfile.ZipFile(io.BytesIO(manager.compress(dataset_dir)))
        assert sorted(archive.namelist()) == [
            "labels.npy",
            "manifest.json",
            "nested/shard.npy",
        ]

    def test_compress_is_deterministic(self, dataset_dir, file_store):
        manager = DatasetManager(file_store)
        assert manager.compress(dataset_dir) == manager.compress(dataset_dir)

    def test_stored_codec_larger_than_deflate_for_compressible_data(
        self, dataset_dir, file_store
    ):
        deflate = DatasetManager(file_store, codec=CODEC_DEFLATE).compress(dataset_dir)
        stored = DatasetManager(file_store, codec=CODEC_STORED).compress(dataset_dir)
        assert len(deflate) < len(stored)

    def test_unknown_codec_rejected(self, file_store):
        with pytest.raises(ValueError, match="codec"):
            DatasetManager(file_store, codec="zstd")

    def test_missing_directory_rejected(self, file_store, tmp_path):
        with pytest.raises(NotADirectoryError):
            DatasetManager(file_store).compress(tmp_path / "absent")


class TestSaveRecover:
    def test_round_trip_restores_bytes(self, dataset_dir, file_store, tmp_path):
        manager = DatasetManager(file_store)
        file_id = manager.save_dataset(dataset_dir)
        out = manager.recover_dataset(file_id, tmp_path / "restored")
        assert (out / "manifest.json").read_text() == '{"name": "tiny"}'
        assert (out / "nested" / "shard.npy").read_bytes() == (
            dataset_dir / "nested" / "shard.npy"
        ).read_bytes()

    def test_dataset_size_reports_archive_bytes(self, dataset_dir, file_store):
        manager = DatasetManager(file_store)
        file_id = manager.save_dataset(dataset_dir)
        assert manager.dataset_size(file_id) == file_store.size(file_id)

    def test_path_traversal_member_rejected(self, file_store, tmp_path):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("../escape.txt", "evil")
        file_id = file_store.save_bytes(buffer.getvalue(), suffix=".zip")
        manager = DatasetManager(file_store)
        with pytest.raises(ValueError, match="escapes"):
            manager.recover_dataset(file_id, tmp_path / "out")
