"""Probing tool: layer-wise reproducibility verification (paper §2.4)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    ProbeSummary,
    probe_inference,
    probe_reproducibility,
    probe_training,
)
from repro.nn import rng
from tests.conftest import make_tiny_cnn


def batch():
    nn.manual_seed(2)
    return nn.randn(2, 3, 8, 8), np.array([0, 1], dtype=np.int64)


class TestProbeCapture:
    def test_inference_records_every_layer(self):
        model = make_tiny_cnn()
        images, _ = batch()
        summary = probe_inference(model, images)
        names = [record.name for record in summary.records]
        assert names[-1] == "<model>"
        assert len(names) == 7  # 6 layers + root output
        assert all(record.kind == "forward" for record in summary.records)

    def test_training_probe_adds_gradients(self):
        model = make_tiny_cnn()
        images, labels = batch()
        summary = probe_training(model, images, labels)
        kinds = {record.kind for record in summary.records}
        assert kinds == {"forward", "grad"}
        grad_names = [r.name for r in summary.records if r.kind == "grad"]
        assert "5.weight" in grad_names

    def test_records_capture_statistics(self):
        model = make_tiny_cnn()
        images, _ = batch()
        record = probe_inference(model, images).records[0]
        assert record.shape == [2, 4, 8, 8]
        assert np.isfinite(record.mean) and np.isfinite(record.std)

    def test_hooks_are_removed_after_probe(self):
        model = make_tiny_cnn()
        images, _ = batch()
        probe_inference(model, images)
        assert all(
            not module._forward_hooks for _, module in model.named_modules()
        )


class TestComparison:
    def test_identical_runs_reproducible(self):
        model = make_tiny_cnn()
        model.eval()
        images, _ = batch()
        with rng.deterministic_mode(True):
            first = probe_inference(model, images)
            second = probe_inference(model, images)
        comparison = first.compare(second)
        assert comparison.reproducible
        assert comparison.first_divergence is None

    def test_nondeterministic_mode_detected(self):
        model = make_tiny_cnn()
        model.eval()
        images, _ = batch()
        with rng.deterministic_mode(False):
            first = probe_inference(model, images)
            second = probe_inference(model, images)
        comparison = first.compare(second)
        assert not comparison.reproducible
        assert comparison.first_divergence is not None

    def test_missing_records_break_reproducibility(self):
        model = make_tiny_cnn()
        images, _ = batch()
        full = probe_inference(model, images)
        truncated = ProbeSummary(records=full.records[:-1])
        assert not full.compare(truncated).reproducible
        assert not truncated.compare(full).reproducible


class TestProbeReproducibility:
    def test_standard_model_training_reproducible(self):
        """The paper: the majority of (deterministically implemented)
        models reproduce inference AND training."""
        model = make_tiny_cnn()
        images, labels = batch()
        result = probe_reproducibility(model, images, labels, training=True)
        assert result.reproducible

    def test_model_with_dropout_still_reproducible_via_seed(self):
        model = nn.Sequential(nn.Flatten(), nn.Dropout(0.5), nn.Linear(192, 4))
        images, labels = batch()
        result = probe_reproducibility(
            model, images, labels[:2] % 4, training=True
        )
        assert result.reproducible

    def test_deprecated_layer_breaks_reproducibility(self):
        """The paper: non-reproducible models use deprecated layers without
        deterministic implementations — modelled by LegacyDropout."""
        model = nn.Sequential(nn.Flatten(), nn.LegacyDropout(0.5), nn.Linear(192, 4))
        images, labels = batch()
        result = probe_reproducibility(model, images, labels % 4, training=True)
        assert not result.reproducible

    def test_inference_only_probe(self):
        model = make_tiny_cnn()
        model.eval()
        images, labels = batch()
        assert probe_reproducibility(model, images, labels, training=False).reproducible


class TestCrossMachineWorkflow:
    def test_summary_save_load_round_trip(self, tmp_path):
        model = make_tiny_cnn()
        images, labels = batch()
        with rng.deterministic_mode(True):
            summary = probe_training(model, images, labels)
        path = tmp_path / "probe.json"
        summary.save(path)
        loaded = ProbeSummary.load(path)
        assert loaded.compare(summary).reproducible

    def test_saved_summary_detects_later_divergence(self, tmp_path):
        model = make_tiny_cnn(seed=0)
        images, labels = batch()
        with rng.deterministic_mode(True):
            probe_training(model, images, labels).save(tmp_path / "a.json")
        other = make_tiny_cnn(seed=99)
        with rng.deterministic_mode(True):
            second = probe_training(other, images, labels)
        first = ProbeSummary.load(tmp_path / "a.json")
        assert not first.compare(second).reproducible
