"""Concurrent saves and recoveries against one shared store pair.

The parallel recovery plane puts worker threads inside the save/recover
paths; these tests drive many *application* threads through one
FileStore/ChunkStore on top of that, with and without fault injection,
and check the two invariants that matter: every recovery is bitwise
identical to what was saved, and refcounts stay consistent with the
surviving manifests (fsck finds a clean catalog).
"""

import threading

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.faults import FaultInjector
from repro.filestore import FileStore
from repro.retry import RetryPolicy
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_concurrent_save_recover",
        "build_probe_model",
        {"num_classes": 10},
    )


def states_equal(a, b):
    return list(a) == list(b) and all(
        np.array_equal(a[name], b[name]) for name in a
    )


def run_threads(workers):
    errors = []

    def guard(fn):
        try:
            fn()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=guard, args=(fn,)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors


class TestConcurrentCleanStores:
    def test_parallel_savers_and_recoverers_share_one_store(
        self, mem_doc_store, tmp_path
    ):
        file_store = FileStore(tmp_path / "files", workers=2, chunk_cache=1 << 20)
        service = BaselineSaveService(mem_doc_store, file_store)
        arch = tiny_arch()

        # seed models the recoverer threads will hammer while savers run
        seeded = {}
        for seed in range(3):
            model = make_tiny_cnn(seed=seed)
            seeded[service.save_model(ModelSaveInfo(model, arch))] = model.state_dict()

        saved = {}
        saved_lock = threading.Lock()

        def saver(seed):
            def run():
                model = make_tiny_cnn(seed=seed)
                model_id = service.save_model(ModelSaveInfo(model, arch))
                with saved_lock:
                    saved[model_id] = model.state_dict()

            return run

        def recoverer(model_id):
            def run():
                for _ in range(3):
                    recovered = service.recover_model(model_id).model.state_dict()
                    assert states_equal(seeded[model_id], recovered)

            return run

        run_threads(
            [saver(seed) for seed in range(10, 14)]
            + [recoverer(model_id) for model_id in seeded]
        )

        for model_id, state in saved.items():
            recovered = service.recover_model(model_id).model.state_dict()
            assert states_equal(state, recovered)
        assert ModelManager(service).fsck(repair=False).clean

    def test_concurrent_derived_saves_keep_refcounts_consistent(
        self, mem_doc_store, tmp_path
    ):
        file_store = FileStore(tmp_path / "files", workers=2, chunk_cache=1 << 20)
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        arch = tiny_arch()
        base_model = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base_model, arch))

        results = {}
        lock = threading.Lock()

        def derive(offset):
            def run():
                derived = make_tiny_cnn()
                state = {k: v.copy() for k, v in base_model.state_dict().items()}
                state["5.bias"] = state["5.bias"] + float(offset)
                derived.load_state_dict(state)
                model_id = service.save_model(
                    ModelSaveInfo(derived, arch, base_model_id=base_id)
                )
                with lock:
                    results[model_id] = derived.state_dict()

            return run

        run_threads([derive(offset) for offset in range(1, 7)])

        for model_id, state in results.items():
            recovered = service.recover_model(model_id).model.state_dict()
            assert states_equal(state, recovered)
        # six updates sharing one base: the shared chunks' refcounts must
        # match exactly what the surviving manifests reference
        assert ModelManager(service).fsck(repair=False, verify_chunks=True).clean


class TestConcurrentUnderFaults:
    def test_faulty_store_still_recovers_bitwise_identical(
        self, mem_doc_store, tmp_path
    ):
        faults = FaultInjector(
            seed=11,
            error_rate=0.1,
            corrupt_rate=0.1,
            max_consecutive_failures=2,
        )
        retry = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)
        file_store = FileStore(
            tmp_path / "files",
            faults=faults,
            retry=retry,
            workers=2,
            chunk_cache=1 << 20,
        )
        service = ParameterUpdateSaveService(mem_doc_store, file_store, retry=retry)
        arch = tiny_arch()

        base_model = make_tiny_cnn(seed=2)
        base_id = service.save_model(ModelSaveInfo(base_model, arch))

        expected = {base_id: base_model.state_dict()}
        lock = threading.Lock()

        def saver(offset):
            def run():
                derived = make_tiny_cnn()
                state = {k: v.copy() for k, v in base_model.state_dict().items()}
                state["5.bias"] = state["5.bias"] + float(offset)
                derived.load_state_dict(state)
                model_id = service.save_model(
                    ModelSaveInfo(derived, arch, base_model_id=base_id)
                )
                with lock:
                    expected[model_id] = derived.state_dict()

            return run

        def recoverer():
            def run():
                for _ in range(4):
                    recovered = service.recover_model(base_id).model.state_dict()
                    assert states_equal(expected[base_id], recovered)

            return run

        run_threads([saver(o) for o in range(1, 5)] + [recoverer(), recoverer()])

        for model_id, state in expected.items():
            recovered = service.recover_model(model_id).model.state_dict()
            assert states_equal(state, recovered)
        # stop injecting before the consistency sweep: fsck itself re-reads
        # every chunk, and the invariant under test is store state, not
        # fsck's own fault tolerance
        faults.error_rate = faults.corrupt_rate = 0.0
        assert ModelManager(service).fsck(repair=False, verify_chunks=True).clean

    def test_injector_counters_stay_consistent_under_threads(self):
        """The injector's PRNG and counters are shared mutable state; the
        parallel chunk paths hit them from worker threads, so every fault
        decision is lock-guarded — no op may be lost or double-counted."""
        from repro.core.errors import TransientStoreError

        faults = FaultInjector(seed=9, error_rate=0.3)
        calls_per_thread = 200

        def hammer():
            def run():
                for _ in range(calls_per_thread):
                    try:
                        faults.fail_point("chunk.read")
                    except TransientStoreError:
                        pass

            return run

        run_threads([hammer() for _ in range(8)])
        assert faults.stats["ops"] == 8 * calls_per_thread
        assert 0 < faults.stats["errors"] < faults.stats["ops"]


class TestVerifyCatalogCacheReuse:
    def test_caller_provided_cache_is_reused_across_sweeps(
        self, mem_doc_store, tmp_path
    ):
        from repro.core import RecoveryCache

        file_store = FileStore(tmp_path / "files")
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        arch = tiny_arch()
        base = make_tiny_cnn(seed=3)
        ids = [service.save_model(ModelSaveInfo(base, arch))]
        for offset in range(1, 4):
            derived = make_tiny_cnn()
            state = {k: v.copy() for k, v in base.state_dict().items()}
            state["5.bias"] = state["5.bias"] + float(offset)
            derived.load_state_dict(state)
            ids.append(
                service.save_model(ModelSaveInfo(derived, arch, base_model_id=ids[0]))
            )

        manager = ModelManager(service)
        cache = RecoveryCache(max_entries=16, protect_prefix=True)
        first = manager.verify_catalog(cache=cache)
        assert all(first.values())
        warm = cache.stats()["hits"]

        second = manager.verify_catalog(cache=cache)
        assert all(second.values())
        # the second sweep recovers every chain through the same cache:
        # the shared base is served from memory, not re-recovered
        assert cache.stats()["hits"] > warm

    def test_use_cache_false_ignores_provided_cache(self, mem_doc_store, tmp_path):
        from repro.core import RecoveryCache

        file_store = FileStore(tmp_path / "files")
        service = BaselineSaveService(mem_doc_store, file_store)
        service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        manager = ModelManager(service)
        cache = RecoveryCache(max_entries=4)
        results = manager.verify_catalog(use_cache=False)
        assert all(results.values())
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}
