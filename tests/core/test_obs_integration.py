"""Observability wired through the core services, manager, and fsck."""

import pytest

from repro import obs
from repro.core import ArchitectureRef, BaselineSaveService, ModelManager, ModelSaveInfo
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from repro.obs import FakeClock
from tests.conftest import make_tiny_cnn

ARCH = ArchitectureRef.from_factory(
    "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
)

FSCK_STEPS = (
    "journals", "segments", "compaction", "documents", "chunks",
    "orphan_files", "refcounts", "replication", "hints", "orphan_documents",
)


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    yield
    obs.reset()


def make_service(tmp_path, **kwargs):
    return BaselineSaveService(
        DocumentStore(tmp_path / "docs"), FileStore(tmp_path / "files"), **kwargs
    )


class TestFakeClockTimings:
    def test_snapshot_recover_timings_are_exact_ticks(self, tmp_path):
        """Each timed section reads perf() twice, so it measures exactly
        one tick; ``load`` spans two sections (architecture + state)."""
        service = make_service(tmp_path, clock=FakeClock(tick=1.0))
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        info = service.recover_model(model_id, verify=True)
        assert info.timings == {
            "load": 2.0, "recover": 1.0, "check_env": 0.0, "check_hash": 1.0,
        }

    def test_skipping_verify_zeroes_check_hash(self, tmp_path):
        service = make_service(tmp_path, clock=FakeClock(tick=1.0))
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        info = service.recover_model(model_id, verify=False)
        assert info.timings == {
            "load": 2.0, "recover": 1.0, "check_env": 0.0, "check_hash": 0.0,
        }


class TestServiceMetrics:
    def test_save_recover_counters_and_histograms(self, tmp_path):
        service = make_service(tmp_path)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        service.recover_model(model_id)
        service.recover_model(model_id)
        registry = obs.registry()
        assert registry.value("mmlib_saves_total", approach="baseline") == 1
        assert registry.value("mmlib_recovers_total", approach="baseline") == 2
        snapshot = registry.snapshot()

        def series(name):
            [match] = [
                s for s in snapshot[name]["series"]
                if s["labels"] == {"approach": "baseline"}
            ]
            return match

        assert series("mmlib_save_seconds")["count"] == 1
        assert series("mmlib_recover_seconds")["count"] == 2

    def test_save_and_recover_produce_trace_trees(self, tmp_path):
        service = make_service(tmp_path)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        service.recover_model(model_id)
        tracer = obs.tracer()
        roots = [sp for sp in tracer.spans() if sp.parent_id is None]
        assert [sp.name for sp in roots] == [
            "service.save_model", "service.recover_model",
        ]
        assert roots[0].attrs["model_id"] == model_id
        recover_names = {
            sp.name for sp in tracer.spans(trace_id=roots[1].trace_id)
        }
        assert {"service.recover_model", "recover.document",
                "store.recover_chunks"} <= recover_names


class TestManagerStats:
    def test_stats_bundles_registry_and_components(self, tmp_path):
        service = make_service(tmp_path)
        manager = ModelManager(service)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        service.recover_model(model_id)
        stats = manager.stats()
        [saves] = [
            s for s in stats["metrics"]["mmlib_saves_total"]["series"]
            if s["labels"] == {"approach": "baseline"}
        ]
        assert saves["value"] == 1
        # a plain local deployment contributes no optional sections
        assert "network" not in stats
        assert "cluster_files" not in stats

    def test_stats_includes_chunk_cache_when_present(self, tmp_path):
        service = BaselineSaveService(
            DocumentStore(tmp_path / "docs"),
            FileStore(tmp_path / "files", chunk_cache=1 << 20),
        )
        manager = ModelManager(service)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        service.recover_model(model_id)
        cache = manager.stats()["chunk_cache"]
        assert set(cache) == {"entries", "bytes", "hits", "misses", "evictions"}


class TestFsckObservability:
    def test_report_times_every_step(self, tmp_path):
        service = make_service(tmp_path)
        manager = ModelManager(service)
        service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        report = manager.fsck()
        assert tuple(report.step_seconds) == FSCK_STEPS
        assert all(seconds >= 0.0 for seconds in report.step_seconds.values())
        assert report.to_dict()["step_seconds"] == report.step_seconds

    def test_fsck_steps_appear_as_spans(self, tmp_path):
        manager = ModelManager(make_service(tmp_path))
        manager.fsck()
        span_names = {sp.name for sp in obs.tracer().spans()}
        assert {f"fsck.{step}" for step in FSCK_STEPS} <= span_names

    def test_repairs_emit_events_and_counters(self, tmp_path):
        service = make_service(tmp_path)
        manager = ModelManager(service)
        service.save_model(ModelSaveInfo(make_tiny_cnn(), ARCH))
        # orphan a file: write a blob no document references
        service.files.save_bytes(b"orphan payload")
        report = manager.fsck()
        assert [issue.kind for issue in report.repaired] == ["orphan_file"]
        registry = obs.registry()
        assert registry.value("mmlib_fsck_issues_total", kind="orphan_file") == 1
        assert registry.value("mmlib_fsck_repairs_total") == 1
        [event] = obs.events().events(kind="fsck_repair")
        assert event.fields["issue"] == "orphan_file"
