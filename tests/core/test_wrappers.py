"""Restorable object wrappers (paper Fig. 5)."""

import numpy as np
import pytest

from repro.core import RestorableObjectWrapper, StateFileRestorableObjectWrapper
from repro.core.errors import RecoveryError, SaveError
from repro.core.wrappers import load_wrapper
from repro.nn.modules import Parameter
from repro.nn.optim import SGD


class TestStatelessWrapper:
    def test_import_path_restore(self, mem_doc_store, file_store):
        wrapper = RestorableObjectWrapper(
            class_path="repro.nn.optim.SGD",
            init_args={"lr": 0.5},
            ref_args={"params": "params"},
        )
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        params = [Parameter(np.zeros(2, dtype=np.float32))]
        instance = loaded.restore_instance(refs={"params": params})
        assert isinstance(instance, SGD)
        assert instance.lr == 0.5

    def test_ref_placeholder_in_init_args(self, mem_doc_store, file_store):
        wrapper = RestorableObjectWrapper(
            class_path="repro.nn.optim.SGD",
            init_args={"lr": 0.1, "params": "$ref:model_params"},
        )
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        params = [Parameter(np.zeros(2, dtype=np.float32))]
        instance = loaded.restore_instance(refs={"model_params": params})
        assert instance.params == params

    def test_missing_ref_raises_with_available_keys(self, mem_doc_store, file_store):
        wrapper = RestorableObjectWrapper(
            class_path="repro.nn.optim.SGD", ref_args={"params": "params"}
        )
        with pytest.raises(RecoveryError, match="params"):
            wrapper.restore_instance(refs={"other": 1})

    def test_config_args_resolved(self):
        wrapper = RestorableObjectWrapper(
            class_path="repro.nn.modules.Dropout", config_args={"p": "dropout_rate"}
        )
        instance = wrapper.restore_instance(config={"dropout_rate": 0.3})
        assert instance.p == 0.3

    def test_missing_config_key_raises(self):
        wrapper = RestorableObjectWrapper(
            class_path="repro.nn.modules.Dropout", config_args={"p": "dropout_rate"}
        )
        with pytest.raises(RecoveryError, match="dropout_rate"):
            wrapper.restore_instance(config={})

    def test_inline_code_restore(self, mem_doc_store, file_store):
        code = "class Doubler:\n    def __init__(self, factor=2):\n        self.factor = factor\n"
        wrapper = RestorableObjectWrapper(
            code=code, class_name="Doubler", init_args={"factor": 3}
        )
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        assert loaded.restore_instance().factor == 3

    def test_inline_code_missing_class_raises(self):
        wrapper = RestorableObjectWrapper(code="x = 1", class_name="Missing")
        with pytest.raises(RecoveryError, match="Missing"):
            wrapper.restore_instance()

    def test_requires_class_path_or_code(self):
        with pytest.raises(SaveError):
            RestorableObjectWrapper()
        with pytest.raises(SaveError):
            RestorableObjectWrapper(code="class A: pass")

    def test_bad_import_path_raises(self):
        wrapper = RestorableObjectWrapper(class_path="repro.nn.optim.NoSuchThing")
        with pytest.raises(RecoveryError):
            wrapper.restore_instance()


class TestStatefulWrapper:
    def _make_optimizer(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        optimizer = SGD([param], lr=1.0, momentum=0.9)
        param.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        return param, optimizer

    def test_state_file_round_trip(self, mem_doc_store, file_store):
        param, optimizer = self._make_optimizer()
        wrapper = StateFileRestorableObjectWrapper(
            instance=optimizer,
            class_path="repro.nn.optim.SGD",
            init_args={"lr": 1.0, "momentum": 0.9},
            ref_args={"params": "params"},
        )
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        fresh_param = Parameter(np.zeros(3, dtype=np.float32))
        restored = loaded.restore_instance(
            refs={"params": [fresh_param]}, file_store=file_store
        )
        buf = restored.state[id(fresh_param)]["momentum_buffer"]
        assert np.allclose(buf, optimizer.state[id(param)]["momentum_buffer"])

    def test_snapshot_pins_pre_training_state(self, mem_doc_store, file_store):
        param, optimizer = self._make_optimizer()
        wrapper = StateFileRestorableObjectWrapper(
            instance=optimizer,
            class_path="repro.nn.optim.SGD",
            init_args={"lr": 1.0, "momentum": 0.9},
            ref_args={"params": "params"},
        )
        wrapper.snapshot_state()
        # mutate after the snapshot: this must NOT be persisted
        param.grad = np.full(3, 100.0, dtype=np.float32)
        optimizer.step()
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        fresh_param = Parameter(np.zeros(3, dtype=np.float32))
        restored = loaded.restore_instance(
            refs={"params": [fresh_param]}, file_store=file_store
        )
        buf = restored.state[id(fresh_param)]["momentum_buffer"]
        assert np.allclose(buf, 1.0)  # the pre-mutation buffer

    def test_restore_without_file_store_raises(self, mem_doc_store, file_store):
        _, optimizer = self._make_optimizer()
        wrapper = StateFileRestorableObjectWrapper(
            instance=optimizer,
            class_path="repro.nn.optim.SGD",
            init_args={"lr": 1.0, "momentum": 0.9},
            ref_args={"params": "params"},
        )
        doc_id = wrapper.save(mem_doc_store, file_store)
        loaded = load_wrapper(doc_id, mem_doc_store)
        with pytest.raises(RecoveryError, match="file store"):
            loaded.restore_instance(refs={"params": [Parameter(np.zeros(1))]})

    def test_snapshot_without_instance_raises(self):
        wrapper = StateFileRestorableObjectWrapper(class_path="repro.nn.optim.SGD")
        with pytest.raises(SaveError):
            wrapper.snapshot_state()

    def test_target_without_state_dict_rejected(self, mem_doc_store, file_store):
        wrapper = StateFileRestorableObjectWrapper(
            instance=object(), class_path="builtins.object"
        )
        with pytest.raises(SaveError, match="state_dict"):
            wrapper.save(mem_doc_store, file_store)


class TestLoadDispatch:
    def test_kind_dispatch(self, mem_doc_store, file_store):
        stateless = RestorableObjectWrapper(class_path="repro.nn.modules.ReLU")
        doc_id = stateless.save(mem_doc_store, file_store)
        assert type(load_wrapper(doc_id, mem_doc_store)) is RestorableObjectWrapper

    def test_unknown_kind_rejected(self, mem_doc_store):
        from repro.core.schema import WRAPPERS

        doc_id = mem_doc_store.collection(WRAPPERS).insert_one(
            {"kind": "alien", "class_path": "x.Y"}
        )
        with pytest.raises(RecoveryError, match="alien"):
            load_wrapper(doc_id, mem_doc_store)
