"""Model provenance approach: save the recipe, replay training (§3.3)."""

import numpy as np
import pytest

from repro.core import (
    ModelSaveInfo,
    ProvenanceSaveInfo,
    ProvenanceSaveService,
    TrainRunSpec,
)
from repro.core.errors import RecoveryError, SaveError
from repro.core.schema import MODELS, TRAIN_INFO, WRAPPERS


@pytest.fixture
def service(mem_doc_store, file_store, tmp_path):
    return ProvenanceSaveService(mem_doc_store, file_store, scratch_dir=tmp_path / "scratch")


def save_chain(service, chain, upto=None):
    """Save a pre-built chain through the MPA; returns use-case -> id."""
    arch = chain.config.architecture_ref()
    ids = {}
    for step in chain.steps:
        if upto is not None and len(ids) > upto:
            break
        base_id = (
            ids[chain.steps[step.base_index].use_case]
            if step.base_index is not None
            else None
        )
        model = chain.build_model(step.use_case)
        if step.run is None:
            ids[step.use_case] = service.save_model(
                ModelSaveInfo(model, arch, base_model_id=base_id, use_case=step.use_case)
            )
        else:
            ids[step.use_case] = service.save_model(
                step.run.to_provenance_info(base_id, trained_model=model, use_case=step.use_case)
            )
    return ids


class TestSave:
    def test_initial_model_saved_with_baseline_logic(self, service, full_chain, mem_doc_store):
        ids = save_chain(service, full_chain, upto=0)
        document = mem_doc_store.collection(MODELS).get(ids["U_1"])
        assert document["parameters_file"]

    def test_derived_model_has_no_parameters(self, service, full_chain, mem_doc_store):
        ids = save_chain(service, full_chain, upto=1)
        document = mem_doc_store.collection(MODELS).get(ids["U_3-1-1"])
        assert "parameters_file" not in document
        assert document["train_info_id"]
        assert document["provenance"]["dataset_file_id"]
        assert document["provenance"]["rng_state"]

    def test_wrapper_documents_created(self, service, full_chain, mem_doc_store):
        save_chain(service, full_chain, upto=1)
        assert mem_doc_store.collection(WRAPPERS).count() == 2  # dataset + optimizer
        assert mem_doc_store.collection(TRAIN_INFO).count() == 1

    def test_save_requires_existing_base(self, service, full_chain):
        step = full_chain.steps[1]
        info = step.run.to_provenance_info("model-" + "0" * 32)
        with pytest.raises(SaveError, match="not saved"):
            service.save_model(info)

    def test_save_info_validation(self, service, full_chain):
        step = full_chain.steps[1]
        info = step.run.to_provenance_info("model-" + "0" * 32)
        info.dataset_dir = None  # neither dir nor reference
        with pytest.raises(SaveError, match="exactly one"):
            service.save_model(info)

    def test_rejects_unknown_save_info_type(self, service):
        with pytest.raises(SaveError, match="expected"):
            service.save_model({"not": "a save info"})

    def test_storage_dominated_by_dataset(self, service, full_chain):
        """§4.2: the dataset is responsible for almost all MPA storage."""
        ids = save_chain(service, full_chain, upto=1)
        breakdown = service.model_save_size(ids["U_3-1-1"])
        assert breakdown.files["dataset"] > 0.5 * breakdown.total
        assert "parameters" not in breakdown.files


class TestRecover:
    def test_single_replay_is_exact(self, service, full_chain):
        ids = save_chain(service, full_chain, upto=1)
        expected = full_chain.build_model("U_3-1-1").state_dict()
        recovered = service.recover_model(ids["U_3-1-1"])
        assert recovered.verified is True
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_deep_chain_replay_is_exact(self, service, full_chain):
        ids = save_chain(service, full_chain)
        expected = full_chain.build_model("U_3-2-2").state_dict()
        recovered = service.recover_model(ids["U_3-2-2"])
        assert recovered.recovery_depth == 3
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_recover_same_model_twice_yields_equal_models(self, service, full_chain):
        """The paper's dedicated MPA experiment: loading the same model
        twice must produce equal models."""
        ids = save_chain(service, full_chain, upto=1)
        first = service.recover_model(ids["U_3-1-1"]).model.state_dict()
        second = service.recover_model(ids["U_3-1-1"]).model.state_dict()
        assert all(np.array_equal(first[k], second[k]) for k in first)

    def test_partial_relation_replay(self, service, partial_chain):
        ids = save_chain(service, partial_chain, upto=1)
        expected = partial_chain.build_model("U_3-1-1").state_dict()
        got = service.recover_model(ids["U_3-1-1"]).model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_recovery_does_not_disturb_caller_rng(self, service, full_chain):
        from repro.nn import rng

        ids = save_chain(service, full_chain, upto=1)
        rng.manual_seed(12345)
        expected_next = rng.generator().random(4).copy()
        rng.manual_seed(12345)
        service.recover_model(ids["U_3-1-1"])
        assert np.array_equal(rng.generator().random(4), expected_next)

    def test_external_dataset_reference_requires_execution_env(
        self, service, full_chain, tmp_path
    ):
        step = full_chain.steps[1]
        arch = full_chain.config.architecture_ref()
        base_id = service.save_model(
            ModelSaveInfo(full_chain.build_model("U_1"), arch, use_case="U_1")
        )
        info = step.run.to_provenance_info(
            base_id, trained_model=full_chain.build_model("U_3-1-1")
        )
        info.dataset_dir = None
        info.dataset_reference = "s3://datasets/co512"
        model_id = service.save_model(info)
        with pytest.raises(RecoveryError, match="dataset_root"):
            service.recover_model(model_id)
        # providing the externally managed dataset's location succeeds
        recovered = service.recover_model(
            model_id, execution_env={"dataset_root": str(step.run.dataset_dir)}
        )
        assert recovered.verified is True

    def test_external_dataset_reference_saves_no_dataset_bytes(
        self, service, full_chain
    ):
        """§4.7: with externally managed data the MPA's storage collapses
        to the training information."""
        step = full_chain.steps[1]
        arch = full_chain.config.architecture_ref()
        base_id = service.save_model(
            ModelSaveInfo(full_chain.build_model("U_1"), arch, use_case="U_1")
        )
        info = step.run.to_provenance_info(base_id)
        info.dataset_dir = None
        info.dataset_reference = "s3://datasets/co512"
        model_id = service.save_model(info)
        breakdown = service.model_save_size(model_id)
        assert "dataset" not in breakdown.files
        assert breakdown.total < 100_000


class TestTrainRunSpec:
    def test_round_trip(self):
        spec = TrainRunSpec(number_epochs=2, number_batches=4, seed=7, deterministic=True)
        assert TrainRunSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_on_load(self):
        spec = TrainRunSpec.from_dict({"number_epochs": 1, "seed": 0})
        assert spec.number_batches is None
        assert spec.deterministic is True
