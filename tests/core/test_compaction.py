"""Chain compaction: bounded recovery depth, journaled crash safety."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    ChainCompactor,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.core.compaction import CompactionJournal
from repro.faults import CrashPoint, FaultInjector
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_compaction", "build_probe_model", {"num_classes": 10}
    )


def save_chain(service, length):
    """One root snapshot plus ``length`` PUA deltas; returns (ids, states)."""
    model = make_tiny_cnn(seed=1)
    ids = [service.save_model(ModelSaveInfo(model, tiny_arch(), use_case="U_1"))]
    states = {ids[0]: {k: v.copy() for k, v in model.state_dict().items()}}
    for _ in range(length):
        state = {k: v.copy() for k, v in model.state_dict().items()}
        state["5.bias"] = state["5.bias"] + 1.0
        model = make_tiny_cnn()
        model.load_state_dict(state)
        model_id = service.save_model(
            ModelSaveInfo(model, tiny_arch(), base_model_id=ids[-1])
        )
        ids.append(model_id)
        states[model_id] = state
    return ids, states


def assert_bitwise(service, ids, states):
    for model_id in ids:
        recovered = service.recover_model(model_id, verify=True)
        got = recovered.model.state_dict()
        assert set(got) == set(states[model_id])
        for key, want in states[model_id].items():
            assert np.array_equal(np.asarray(got[key]), np.asarray(want)), (
                model_id, key)


@pytest.fixture
def setup(mem_doc_store, file_store):
    service = ParameterUpdateSaveService(mem_doc_store, file_store)
    return service, ModelManager(service)


class TestPlanAndRun:
    def test_compact_bounds_depth_and_keeps_recovery_bitwise(self, setup):
        service, manager = setup
        ids, states = save_chain(service, 6)
        assert service.recover_model(ids[-1]).recovery_depth == 6

        report = manager.compact(max_depth=4)
        assert [m["model_id"] for m in report["materialized"]] == [ids[4]]

        assert_bitwise(service, ids, states)
        assert service.recover_model(ids[-1]).recovery_depth == 2
        assert service.recover_model(ids[4]).recovery_depth == 0

    def test_lineage_and_ids_survive_compaction(self, setup):
        service, manager = setup
        ids, _ = save_chain(service, 5)
        manager.compact(max_depth=4)
        assert service.base_chain(ids[-1]) == list(reversed(ids))
        document = service.documents.collection("models").get(ids[4])
        assert document["base_model"] == ids[3]
        assert document["parameters_file"]
        assert document["compacted"]["from_depth"] == 4
        assert "update_file" not in document

    def test_dry_run_plans_without_rewriting(self, setup):
        service, manager = setup
        ids, _ = save_chain(service, 5)
        report = manager.compact(max_depth=4, dry_run=True)
        assert [p["model_id"] for p in report["planned"]] == [ids[4]]
        assert report["materialized"] == []
        assert service.recover_model(ids[-1]).recovery_depth == 5

    def test_second_run_is_a_no_op(self, setup):
        service, manager = setup
        save_chain(service, 6)
        manager.compact(max_depth=4)
        report = manager.compact(max_depth=4)
        assert report["planned"] == []
        assert report["materialized"] == []

    def test_long_chain_materializes_every_k_levels(self, setup):
        service, manager = setup
        ids, states = save_chain(service, 9)
        report = manager.compact(max_depth=4)
        # depth resets at each planned node: 4 and 8 get materialized
        assert [m["model_id"] for m in report["materialized"]] == [ids[4], ids[8]]
        assert_bitwise(service, ids, states)
        assert service.recover_model(ids[-1]).recovery_depth == 1

    def test_released_bytes_reported_and_snapshots_skipped(self, setup):
        service, manager = setup
        ids, _ = save_chain(service, 4)
        report = manager.compact(max_depth=4)
        assert report["released_bytes"] > 0
        compactor = ChainCompactor(service)
        outcome = compactor.compact_model(ids[0])  # already a snapshot
        assert outcome["released_bytes"] == 0

    def test_max_depth_validation(self, setup):
        service, _ = setup
        with pytest.raises(ValueError):
            ChainCompactor(service, max_depth=0)

    def test_fsck_stays_clean_after_compaction(self, setup):
        service, manager = setup
        save_chain(service, 6)
        manager.compact(max_depth=4)
        report = manager.fsck()
        assert report.clean, report.summary()


class TestCrashSafety:
    def test_crash_at_every_journaled_op_recovers_bitwise(self, setup):
        """Kill the compactor at each protocol step; fsck must converge.

        After every crash, recovery of every model must be bitwise
        identical both before and after repair, and the journal must be
        fully resolved (rolled forward or back) by fsck.
        """
        service, manager = setup
        ids, states = save_chain(service, 5)
        crashes = 0
        for at in range(1, 30):
            faults = FaultInjector(seed=0)
            compactor = ChainCompactor(service, max_depth=4)
            compactor.fault_hook = faults.fail_point
            faults.arm_crash(at, op="compact.")
            try:
                compactor.run()
            except CrashPoint:
                crashes += 1
                assert_bitwise(service, ids, states)  # before repair
                report = manager.fsck()
                assert not report.unrepaired, report.summary()
                assert compactor.journal.pending() == []
                assert_bitwise(service, ids, states)  # after repair
            else:
                break
        assert crashes >= 4  # artifacts, journal, commit, cleanup, discard
        assert manager.compact(max_depth=4)["planned"] == []
        assert_bitwise(service, ids, states)

    def test_uncommitted_swap_rolls_back(self, setup):
        """A crash before the document update must leave no trace."""
        service, manager = setup
        ids, states = save_chain(service, 4)
        faults = FaultInjector(seed=0)
        compactor = ChainCompactor(service, max_depth=4)
        compactor.fault_hook = faults.fail_point
        faults.arm_crash(1, op="compact.commit")
        with pytest.raises(CrashPoint):
            compactor.run()
        assert len(compactor.journal.pending()) == 1
        actions = ChainCompactor.resume_pending(
            service.documents, service.files)
        assert [a["action"] for a in actions] == ["rolled_back"]
        document = service.documents.collection("models").get(ids[4])
        assert "parameters_file" not in document or not document.get(
            "parameters_file")
        assert document.get("update_file")
        report = manager.fsck()  # artifacts fully reclaimed
        assert not report.unrepaired, report.summary()
        assert_bitwise(service, ids, states)

    def test_committed_swap_rolls_forward(self, setup):
        """A crash after the document update must finish the cleanup."""
        service, manager = setup
        ids, states = save_chain(service, 4)
        faults = FaultInjector(seed=0)
        compactor = ChainCompactor(service, max_depth=4)
        compactor.fault_hook = faults.fail_point
        faults.arm_crash(1, op="compact.cleanup")
        with pytest.raises(CrashPoint):
            compactor.run()
        old_update = compactor.journal.pending()[0]["old_update_file"]
        assert service.files.exists(old_update)
        actions = ChainCompactor.resume_pending(
            service.documents, service.files)
        assert [a["action"] for a in actions] == ["rolled_forward"]
        assert not service.files.exists(old_update)
        assert compactor.journal.pending() == []
        assert_bitwise(service, ids, states)
        assert service.recover_model(ids[4]).recovery_depth == 0

    def test_fsck_reports_incomplete_compaction_without_repair(self, setup):
        service, manager = setup
        save_chain(service, 4)
        faults = FaultInjector(seed=0)
        compactor = ChainCompactor(service, max_depth=4)
        compactor.fault_hook = faults.fail_point
        faults.arm_crash(1, op="compact.cleanup")
        with pytest.raises(CrashPoint):
            compactor.run()
        report = manager.fsck(repair=False)
        kinds = {issue.kind for issue in report.issues}
        assert "incomplete_compaction" in kinds
        assert len(compactor.journal.pending()) == 1  # untouched
        report = manager.fsck(repair=True)
        assert compactor.journal.pending() == []

    def test_resume_is_idempotent(self, setup):
        service, _ = setup
        save_chain(service, 4)
        faults = FaultInjector(seed=0)
        compactor = ChainCompactor(service, max_depth=4)
        compactor.fault_hook = faults.fail_point
        faults.arm_crash(1, op="compact.cleanup")
        with pytest.raises(CrashPoint):
            compactor.run()
        ChainCompactor.resume_pending(service.documents, service.files)
        # resuming again with nothing pending is a no-op
        assert ChainCompactor.resume_pending(
            service.documents, service.files) == []


class TestJournal:
    def test_torn_journal_write_is_ignored(self, tmp_path):
        journal = CompactionJournal(tmp_path / "chain-compaction")
        journal.write("model-a", {"manifest_file": "m1"})
        (tmp_path / "chain-compaction" / "model-b.json").write_text("{trunc")
        entries = journal.pending()
        assert [e["model_id"] for e in entries] == ["model-a"]
        journal.discard("model-a")
        journal.discard("model-b")
        assert journal.pending() == []
