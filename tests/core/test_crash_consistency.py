"""Crash-consistent saves: kill a save at every step, fsck repairs all.

The tentpole robustness guarantee: a save is atomic under process death.
Whatever operation the process dies on, ``ModelManager.fsck`` restores
every storage invariant, no previously saved model is lost, and a
subsequent save succeeds.
"""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    ProvenanceSaveService,
)
from repro.docstore import DocumentStore
from repro.faults import CrashPoint, FaultInjector, FaultyDocumentStore
from repro.filestore import FileStore
from repro.retry import RetryPolicy
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_crash_consistency", "build_probe_model", {"num_classes": 10}
    )


def assert_states_equal(model, other):
    for key, value in model.state_dict().items():
        assert np.array_equal(value, other.state_dict()[key]), key


SERVICES = [BaselineSaveService, ParameterUpdateSaveService, ProvenanceSaveService]


@pytest.fixture(params=["files", "segments"])
def layout(request):
    """Every crash matrix must hold on both chunk layouts."""
    return request.param


class TestCrashMatrix:
    @pytest.mark.parametrize("service_cls", SERVICES)
    def test_crash_at_every_step_is_repairable(self, service_cls, layout, tmp_path):
        """Kill the save at op 1, 2, 3, ... until it finally runs to completion.

        After every crash: fsck detects damage and repairs to zero
        unrepaired issues, a second fsck is clean, the catalog still holds
        exactly the fault-free base model, and that model recovers bitwise.
        """
        faults = FaultInjector(seed=0)
        docs = FaultyDocumentStore(DocumentStore(), faults)
        files = FileStore(
            tmp_path / "files", faults=faults, tmp_grace_s=0.0, layout=layout
        )
        service = service_cls(docs, files, scratch_dir=tmp_path / "scratch")
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        victim = make_tiny_cnn(seed=2)
        save_info = ModelSaveInfo(
            victim, tiny_arch(), base_model_id=base_id, use_case="U_3-1-1"
        )
        crash_points = 0
        for at in range(1, 200):
            faults.arm_crash(at)
            try:
                second_id = service.save_model(save_info)
            except CrashPoint:
                crash_points += 1
            else:
                break  # the save outran the armed crash: every step covered
        else:
            pytest.fail("save never completed")
        faults.crash_at = None  # disarm: the leftover arm must not fire later

        # the crash loop's final, completed save must itself be consistent
        report = manager.fsck()
        assert not report.unrepaired, report.summary()

        recovered = service.recover_model(second_id)
        assert_states_equal(victim, recovered.model)
        assert crash_points >= 5, f"only {crash_points} distinct crash points hit"

    @pytest.mark.parametrize("service_cls", SERVICES)
    def test_each_crash_repairs_and_preserves_base(self, service_cls, layout, tmp_path):
        faults = FaultInjector(seed=0)
        docs = FaultyDocumentStore(DocumentStore(), faults)
        files = FileStore(
            tmp_path / "files", faults=faults, tmp_grace_s=0.0, layout=layout
        )
        service = service_cls(docs, files, scratch_dir=tmp_path / "scratch")
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))
        clean_files = set(files.file_ids())
        clean_chunks = set(files.chunks.chunk_ids())

        victim = make_tiny_cnn(seed=2)
        save_info = ModelSaveInfo(
            victim, tiny_arch(), base_model_id=base_id, use_case="U_3-1-1"
        )
        for at in range(1, 200):
            faults.arm_crash(at)
            try:
                service.save_model(save_info)
            except CrashPoint:
                pass
            else:
                break
        else:
            pytest.fail("save never completed")
            return
        faults.crash_at = None

        # one fsck repairs the debris of *all* crashed attempts at once,
        # and nothing the base model depends on was lost along the way
        report = manager.fsck()
        assert not report.unrepaired, report.summary()
        assert manager.fsck().clean

        catalog = {record.model_id for record in manager.list_models()}
        assert base_id in catalog
        recovered = service.recover_model(base_id)
        assert_states_equal(base, recovered.model)
        assert clean_files <= set(files.file_ids())
        assert clean_chunks <= set(files.chunks.chunk_ids())


class TestPerCrashRepair:
    def test_fsck_repairs_after_every_individual_crash(self, layout, tmp_path):
        """The exhaustive matrix: after *each* crash point, repair + verify."""
        faults = FaultInjector(seed=0)
        docs = FaultyDocumentStore(DocumentStore(), faults)
        files = FileStore(
            tmp_path / "files", faults=faults, tmp_grace_s=0.0, layout=layout
        )
        service = BaselineSaveService(docs, files, scratch_dir=tmp_path / "scratch")
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        victim = make_tiny_cnn(seed=2)
        save_info = ModelSaveInfo(
            victim, tiny_arch(), base_model_id=base_id, use_case="U_3-1-1"
        )
        crashes = 0
        for at in range(1, 200):
            faults.arm_crash(at)
            try:
                service.save_model(save_info)
            except CrashPoint:
                crashes += 1
                report = manager.fsck()
                assert not report.unrepaired, f"crash at {at}: {report.summary()}"
                assert manager.fsck().clean, f"crash at {at}: second fsck dirty"
                catalog = {r.model_id for r in manager.list_models()}
                assert catalog == {base_id}, f"crash at {at}: catalog {catalog}"
                assert_states_equal(base, service.recover_model(base_id).model)
            else:
                break
        else:
            pytest.fail("save never completed")
        faults.crash_at = None
        assert crashes >= 8, f"only {crashes} crash points exercised"
        assert manager.fsck().clean


class TestAllServicesRetryThroughChaos:
    @pytest.mark.parametrize("service_cls", SERVICES)
    def test_flaky_stores_still_save_and_recover_bitwise(
        self, service_cls, layout, tmp_path
    ):
        """ISSUE acceptance: >=10% transient error rates, bitwise round trip."""
        faults = FaultInjector(
            seed=13, error_rate=0.12, outage_rate=0.12, max_consecutive_failures=3
        )
        retry = RetryPolicy(max_attempts=6, base_delay_s=0.0, sleep=lambda s: None)
        docs = FaultyDocumentStore(DocumentStore(), faults)
        files = FileStore(
            tmp_path / "files", faults=faults, retry=retry, tmp_grace_s=0.0,
            layout=layout,
        )
        service = service_cls(
            docs, files, scratch_dir=tmp_path / "scratch", retry=retry
        )
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=3)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))
        derived = make_tiny_cnn(seed=4)
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id, use_case="U_2")
        )

        assert_states_equal(base, service.recover_model(base_id).model)
        assert_states_equal(derived, service.recover_model(derived_id).model)
        assert retry.retries_taken > 0, "chaos run took no retries at these rates"
        assert faults.stats["errors"] + faults.stats["outages"] > 0
        assert manager.fsck().clean
