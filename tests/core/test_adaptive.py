"""Adaptive save service: per-save approach routing (§4.7)."""

import numpy as np
import pytest

from repro.core import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
    AdaptiveSaveService,
    ArchitectureRef,
    ModelSaveInfo,
)
from repro.core.errors import SaveError
from repro.core.schema import MODELS
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_adaptive", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture
def service(mem_doc_store, file_store, tmp_path):
    return AdaptiveSaveService(
        mem_doc_store, file_store, scratch_dir=tmp_path / "scratch"
    )


def perturb_classifier(base):
    derived = make_tiny_cnn()
    state = {k: v.copy() for k, v in base.state_dict().items()}
    state["5.bias"] = state["5.bias"] + 1.0
    derived.load_state_dict(state)
    return derived


class TestSnapshotRouting:
    def test_initial_model_goes_to_baseline(self, service, mem_doc_store):
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        assert service.last_choice.approach == APPROACH_BASELINE
        document = mem_doc_store.collection(MODELS).get(model_id)
        assert document["parameters_file"]

    def test_sparse_update_goes_to_pua(self, service, mem_doc_store):
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        derived = perturb_classifier(base)
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id)
        )
        assert service.last_choice.approach == APPROACH_PARAM_UPDATE
        document = mem_doc_store.collection(MODELS).get(derived_id)
        assert document["update_file"]

    def test_fully_changed_derived_model_not_forced_to_pua(self, service):
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        unrelated = make_tiny_cnn(seed=99)
        service.save_model(ModelSaveInfo(unrelated, tiny_arch(), base_model_id=base_id))
        # a fully changed model gains nothing from the PUA; either route is
        # acceptable cost-wise, but the profile must say ~100% updated
        assert service.last_choice.storage_bytes >= 0.9 * sum(
            v.nbytes for v in unrelated.state_dict().values()
        )

    def test_base_without_hashes_forces_baseline(self, service, mem_doc_store):
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(base_id)
        del document["layer_hashes"]
        mem_doc_store.collection(MODELS).replace_one(base_id, document)
        service.save_model(
            ModelSaveInfo(perturb_classifier(base), tiny_arch(), base_model_id=base_id)
        )
        assert service.last_choice.approach == APPROACH_BASELINE


class TestProvenanceRouting:
    @pytest.fixture
    def recorded_run(self, tmp_path):
        from repro.workloads import generate_dataset
        from repro.workloads.relations import TrainingRun

        dataset_root = generate_dataset("co512", tmp_path / "data", scale=1 / 2048)
        run = TrainingRun(
            dataset_dir=dataset_root,
            number_epochs=1,
            number_batches=1,
            seed=5,
            image_size=8,
            num_classes=10,
        )
        return run

    def test_small_dataset_routes_to_mpa(self, service, recorded_run):
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        model = make_tiny_cnn()
        model.load_state_dict(base.state_dict())
        recorded_run.execute(model)
        info = recorded_run.to_provenance_info(base_id, trained_model=model)
        model_id = service.save_model(info)
        # tiny CNN (~13 KB) vs ~100 KB dataset: snapshot is cheaper -> no MPA
        assert service.last_choice.approach in (APPROACH_BASELINE, APPROACH_PARAM_UPDATE)
        recovered = service.recover_model(model_id)
        expected = model.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)

    def test_external_dataset_routes_to_mpa(self, service, recorded_run):
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        model = make_tiny_cnn()
        model.load_state_dict(base.state_dict())
        recorded_run.execute(model)
        info = recorded_run.to_provenance_info(base_id, trained_model=model)
        info.dataset_reference = "s3://lake/co512"
        dataset_root = info.dataset_dir
        info.dataset_dir = None
        model_id = service.save_model(info)
        assert service.last_choice.approach == APPROACH_PROVENANCE
        recovered = service.recover_model(
            model_id, execution_env={"dataset_root": str(dataset_root)}
        )
        assert recovered.verified is True

    def test_provenance_info_requires_expected_model(self, service, recorded_run):
        base_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        model = make_tiny_cnn()
        recorded_run.execute(model)
        info = recorded_run.to_provenance_info(base_id)  # no trained model
        with pytest.raises(SaveError, match="expected_model"):
            service.save_model(info)


class TestConstraints:
    def test_storage_bound_forces_pua(self, mem_doc_store, file_store, tmp_path):
        base = make_tiny_cnn()
        model_bytes = sum(v.nbytes for v in base.state_dict().values())
        service = AdaptiveSaveService(
            mem_doc_store,
            file_store,
            scratch_dir=tmp_path / "s",
            max_storage_bytes=model_bytes * 2,  # roomy for the initial save
        )
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        service.max_storage_bytes = model_bytes * 0.1  # tight for updates
        service.save_model(
            ModelSaveInfo(perturb_classifier(base), tiny_arch(), base_model_id=base_id)
        )
        assert service.last_choice.approach == APPROACH_PARAM_UPDATE

    def test_unsatisfiable_constraints_raise(self, mem_doc_store, file_store, tmp_path):
        service = AdaptiveSaveService(
            mem_doc_store, file_store, scratch_dir=tmp_path / "s", max_storage_bytes=1
        )
        with pytest.raises(SaveError, match="constraints"):
            service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))


class TestMixedChainRecovery:
    def test_mixed_approach_chain_recovers(self, service):
        """Adaptive saves can interleave approaches along one chain."""
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        level1 = perturb_classifier(base)
        level1_id = service.save_model(
            ModelSaveInfo(level1, tiny_arch(), base_model_id=base_id)
        )
        level2 = perturb_classifier(level1)
        level2_id = service.save_model(
            ModelSaveInfo(level2, tiny_arch(), base_model_id=level1_id)
        )
        recovered = service.recover_model(level2_id)
        expected = level2.state_dict()
        got = recovered.model.state_dict()
        assert all(np.array_equal(expected[k], got[k]) for k in expected)
