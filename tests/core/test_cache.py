"""Recovery cache: chain-prefix reuse, isolation, eviction."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    ModelSaveInfo,
    ParameterUpdateSaveService,
)
from repro.core.cache import RecoveryCache
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_cache", "build_probe_model", {"num_classes": 10}
    )


@pytest.fixture
def chain_setup(mem_doc_store, file_store):
    """A 5-deep PUA chain; returns (service, ids, expected state dicts)."""
    service = ParameterUpdateSaveService(mem_doc_store, file_store)
    model = make_tiny_cnn(seed=1)
    ids = [service.save_model(ModelSaveInfo(model, tiny_arch()))]
    states = [model.state_dict()]
    for level in range(4):
        derived = make_tiny_cnn()
        state = {k: v.copy() for k, v in states[-1].items()}
        state["5.bias"] = state["5.bias"] + level + 1.0
        derived.load_state_dict(state)
        ids.append(
            service.save_model(ModelSaveInfo(derived, tiny_arch(), base_model_id=ids[-1]))
        )
        states.append(derived.state_dict())
    return service, ids, states


class TestCacheBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RecoveryCache(max_entries=0)

    def test_eviction_is_fifo_and_bounded(self):
        cache = RecoveryCache(max_entries=2)
        arch = tiny_arch()
        for index in range(4):
            cache.put(f"model-{index}", make_tiny_cnn(seed=index), arch, depth=0)
        assert len(cache) == 2
        assert "model-0" not in cache and "model-3" in cache

    def test_stats_track_hits_and_misses(self):
        cache = RecoveryCache()
        assert cache.get("absent") is None
        cache.put("present", make_tiny_cnn(), tiny_arch(), depth=0)
        assert cache.get("present") is not None
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_clear(self):
        cache = RecoveryCache()
        cache.put("x", make_tiny_cnn(), tiny_arch(), depth=0)
        cache.clear()
        assert len(cache) == 0 and cache.stats()["hits"] == 0


class TestProtectPrefix:
    def test_cold_inserts_rejected_at_capacity(self):
        cache = RecoveryCache(max_entries=2, protect_prefix=True)
        arch = tiny_arch()
        for index in range(4):
            cache.put(f"model-{index}", make_tiny_cnn(seed=index), arch, depth=0)
        # the first two entries (the chain prefix) survive; later cold ids
        # are rejected without the deep copy
        assert "model-0" in cache and "model-1" in cache
        assert "model-2" not in cache and "model-3" not in cache
        assert cache.skipped_inserts == 2

    def test_rejected_insert_does_not_copy(self, monkeypatch):
        from repro.core import cache as cache_module

        cache = RecoveryCache(max_entries=1, protect_prefix=True)
        arch = tiny_arch()
        cache.put("warm", make_tiny_cnn(seed=0), arch, depth=0)
        copies = {"n": 0}
        real_snapshot = cache_module._snapshot

        def counting_snapshot(value):
            copies["n"] += 1
            return real_snapshot(value)

        monkeypatch.setattr(cache_module, "_snapshot", counting_snapshot)
        cache.put("cold", make_tiny_cnn(seed=1), arch, depth=0)
        assert copies["n"] == 0

    def test_warm_ids_still_updatable_at_capacity(self):
        cache = RecoveryCache(max_entries=1, protect_prefix=True)
        arch = tiny_arch()
        cache.put("warm", make_tiny_cnn(seed=0), arch, depth=0)
        cache.put("warm", make_tiny_cnn(seed=1), arch, depth=3)
        model_and_depth = cache.get("warm")
        assert model_and_depth is not None and model_and_depth[1] == 3

    def test_clear_resets_skip_counter(self):
        cache = RecoveryCache(max_entries=1, protect_prefix=True)
        arch = tiny_arch()
        cache.put("a", make_tiny_cnn(), arch, depth=0)
        cache.put("b", make_tiny_cnn(), arch, depth=0)
        assert cache.skipped_inserts == 1
        cache.clear()
        assert cache.skipped_inserts == 0

    def test_default_policy_unchanged(self):
        cache = RecoveryCache(max_entries=2)
        arch = tiny_arch()
        for index in range(3):
            cache.put(f"model-{index}", make_tiny_cnn(seed=index), arch, depth=0)
        assert "model-2" in cache and "model-0" not in cache
        assert cache.skipped_inserts == 0


class TestCachedRecovery:
    def test_results_identical_with_and_without_cache(self, chain_setup):
        service, ids, states = chain_setup
        cache = RecoveryCache()
        for index, model_id in enumerate(ids):
            plain = service.recover_model(model_id).model.state_dict()
            cached = service.recover_model(model_id, cache=cache).model.state_dict()
            for key in states[index]:
                assert np.array_equal(states[index][key], plain[key])
                assert np.array_equal(states[index][key], cached[key])

    def test_sweep_hits_grow_with_chain(self, chain_setup):
        service, ids, _ = chain_setup
        cache = RecoveryCache()
        for model_id in ids:
            service.recover_model(model_id, cache=cache)
        # after the sweep every model is cached, and each recovery past the
        # first reused its predecessor: 4 derived models -> >= 4 hits
        assert len(cache) == len(ids)
        assert cache.hits >= len(ids) - 1

    def test_cached_models_do_not_alias(self, chain_setup):
        """Mutating one recovered model must not leak into later recoveries."""
        service, ids, states = chain_setup
        cache = RecoveryCache()
        first = service.recover_model(ids[-1], cache=cache).model
        first.state_dict()["5.bias"][...] = 777.0
        second = service.recover_model(ids[-1], cache=cache).model
        assert np.array_equal(second.state_dict()["5.bias"], states[-1]["5.bias"])

    def test_verification_still_applies_on_cache_hits(self, chain_setup):
        service, ids, _ = chain_setup
        cache = RecoveryCache()
        service.recover_model(ids[2], cache=cache)
        recovered = service.recover_model(ids[2], cache=cache)
        assert recovered.verified is True
        assert recovered.recovery_depth == 2


class TestCatalogSweep:
    def test_verify_catalog_with_cache(self, chain_setup):
        from repro.core import ModelManager

        service, ids, _ = chain_setup
        manager = ModelManager(service)
        results = manager.verify_catalog(use_cache=True)
        assert set(results) == set(ids)
        assert all(flag is True for flag in results.values())

    def test_verify_catalog_detects_tampering(self, chain_setup, mem_doc_store):
        from repro.core import ModelManager, VerificationError

        service, ids, _ = chain_setup
        document = mem_doc_store.collection("models").get(ids[-1])
        document["merkle_root"] = "0" * 64
        mem_doc_store.collection("models").replace_one(ids[-1], document)
        manager = ModelManager(service)
        with pytest.raises(VerificationError):
            manager.verify_catalog()
