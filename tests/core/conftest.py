"""Fixtures for core-service tests: a small cached evaluation-flow chain."""

import pytest

from repro.workloads import ChainConfig, PARTIALLY_UPDATED, build_chain


def small_chain_config(relation):
    return ChainConfig(
        architecture="mobilenetv2",
        relation=relation,
        scale=0.125,
        num_classes=10,
        iterations=2,
        u2_epochs=1,
        u3_epochs=1,
        batches_per_epoch=1,
        dataset_scale=1 / 2048,
        image_size=16,
    )


@pytest.fixture(scope="session")
def chain_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("chain-cache")


@pytest.fixture(scope="session")
def full_chain(chain_cache_dir):
    """Fully-updated MobileNetV2 chain (6 models)."""
    return build_chain(chain_cache_dir, small_chain_config("fully_updated"))


@pytest.fixture(scope="session")
def partial_chain(chain_cache_dir):
    """Partially-updated MobileNetV2 chain (6 models)."""
    return build_chain(chain_cache_dir, small_chain_config(PARTIALLY_UPDATED))
