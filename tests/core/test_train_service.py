"""Train services: training behaviour and persistence round-trips."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core.errors import RecoveryError, SaveError
from repro.core.train_service import (
    ImageClassificationTrainService,
    TrainService,
    load_train_service,
)
from repro.core.wrappers import (
    RestorableObjectWrapper,
    StateFileRestorableObjectWrapper,
)
from repro.workloads import generate_dataset
from repro.workloads.datasets import SyntheticImageFolder
from repro.workloads.relations import TrainingRun
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("data")
    return generate_dataset("co512", root, scale=1 / 2048)


def make_service(dataset_root, model, freeze_mode="none"):
    dataset = SyntheticImageFolder(dataset_root, image_size=8, num_classes=10)
    dataset_wrapper = RestorableObjectWrapper(
        instance=dataset,
        class_path="repro.workloads.datasets.SyntheticImageFolder",
        init_args={"root": "$ref:dataset_root", "image_size": 8, "num_classes": 10},
    )
    optimizer = nn.SGD(list(model.parameters()), lr=0.05, momentum=0.9)
    optimizer_wrapper = StateFileRestorableObjectWrapper(
        instance=optimizer,
        class_path="repro.nn.optim.SGD",
        init_args={"lr": 0.05, "momentum": 0.9},
        ref_args={"params": "params"},
    )
    return ImageClassificationTrainService(
        dataset_wrapper, optimizer_wrapper, batch_size=8, freeze_mode=freeze_mode
    )


class TestTraining:
    def test_training_changes_parameters(self, dataset_root):
        model = make_tiny_cnn(num_classes=10)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        make_service(dataset_root, model).train(model, number_epochs=1, number_batches=2)
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_number_batches_limits_work(self, dataset_root):
        model = make_tiny_cnn(num_classes=10)
        service = make_service(dataset_root, model)
        service.train(model, number_epochs=1, number_batches=1)  # should be quick

    def test_partial_freeze_only_changes_classifier(self, dataset_root):
        from repro.nn.models import create_model

        model = create_model("mobilenetv2", num_classes=10, scale=0.125, seed=0)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        service = make_service(dataset_root, model, freeze_mode="partial")
        service.train(model, number_epochs=1, number_batches=2)
        after = model.state_dict()
        changed = [k for k in before if not np.array_equal(before[k], after[k])]
        assert changed, "partial training must still change the classifier"
        assert all(k.startswith("classifier.") for k in changed), changed

    def test_missing_live_dataset_raises(self, dataset_root):
        model = make_tiny_cnn(num_classes=10)
        service = make_service(dataset_root, model)
        service.dataset_wrapper.instance = None
        with pytest.raises(RecoveryError, match="dataset"):
            service.train(model)

    def test_invalid_freeze_mode_rejected(self, dataset_root):
        model = make_tiny_cnn(num_classes=10)
        with pytest.raises(SaveError):
            make_service(dataset_root, model, freeze_mode="half")

    def test_unknown_loss_rejected(self):
        with pytest.raises(SaveError, match="loss"):
            ImageClassificationTrainService(
                RestorableObjectWrapper(class_path="x.Y"),
                StateFileRestorableObjectWrapper(class_path="x.Z"),
                loss_fn="no_such_loss",
            )


class TestPersistence:
    def test_save_restore_round_trip(self, dataset_root, mem_doc_store, file_store):
        model = make_tiny_cnn(num_classes=10)
        service = make_service(dataset_root, model)
        service.optimizer_wrapper.snapshot_state()
        doc_id = service.save(mem_doc_store, file_store)

        fresh_model = make_tiny_cnn(num_classes=10, seed=5)
        restored = load_train_service(
            doc_id,
            mem_doc_store,
            file_store,
            refs={"model": fresh_model, "dataset_root": str(dataset_root)},
        )
        assert isinstance(restored, ImageClassificationTrainService)
        assert restored.batch_size == 8
        restored.train(fresh_model, number_epochs=1, number_batches=1)

    def test_restore_requires_model_ref(self, dataset_root, mem_doc_store, file_store):
        model = make_tiny_cnn(num_classes=10)
        service = make_service(dataset_root, model)
        service.optimizer_wrapper.snapshot_state()
        doc_id = service.save(mem_doc_store, file_store)
        with pytest.raises(RecoveryError, match="model"):
            load_train_service(
                doc_id, mem_doc_store, file_store, refs={"dataset_root": str(dataset_root)}
            )

    def test_non_train_service_class_rejected(self, mem_doc_store, file_store):
        from repro.core.schema import TRAIN_INFO

        doc_id = mem_doc_store.collection(TRAIN_INFO).insert_one(
            {"service_class": "repro.nn.optim.SGD"}
        )
        with pytest.raises(RecoveryError, match="not a TrainService"):
            load_train_service(doc_id, mem_doc_store, file_store, refs={})


class TestReplayExactness:
    def test_recorded_run_replays_bitwise(self, dataset_root):
        """The core MPA guarantee: replaying a recorded TrainingRun on the
        same base model reproduces the parameters bitwise."""
        base = make_tiny_cnn(num_classes=10, seed=3)
        base_state = {k: v.copy() for k, v in base.state_dict().items()}

        run = TrainingRun(
            dataset_dir=dataset_root,
            number_epochs=2,
            number_batches=2,
            seed=11,
            image_size=8,
            num_classes=10,
        )
        run.execute(base)
        trained_state = base.state_dict()

        # replay on a fresh copy through the persistence-shaped service
        from repro.nn import rng

        replay_model = make_tiny_cnn(num_classes=10, seed=9)
        replay_model.load_state_dict(base_state)
        service = run.build_train_service()
        service.dataset_wrapper.restore_instance(refs={"dataset_root": str(dataset_root)})
        import repro.nn.serialization as serialization

        optimizer_state = serialization.loads(run.optimizer_state_bytes)
        optimizer = nn.SGD(list(replay_model.parameters()), lr=run.learning_rate,
                           momentum=run.momentum)
        optimizer.load_state_dict(optimizer_state)
        service.optimizer_wrapper.instance = optimizer
        rng.set_rng_state(run.rng_state)
        with rng.deterministic_mode(True):
            service.train(replay_model, number_epochs=2, number_batches=2)

        replayed = replay_model.state_dict()
        for key in trained_state:
            assert np.array_equal(trained_state[key], replayed[key]), key
