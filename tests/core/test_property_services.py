"""Property-based tests over the save services' core invariants."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ArchitectureRef,
    MerkleTree,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    extract_parameter_update,
)
from repro.core.hashing import state_dict_hashes
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_property_services", "build_probe_model", {"num_classes": 10}
    )


LAYER_KEYS = list(make_tiny_cnn().state_dict().keys())


@settings(max_examples=20, deadline=None)
@given(changed=st.sets(st.sampled_from(LAYER_KEYS), max_size=len(LAYER_KEYS)))
def test_property_update_extraction_is_exactly_the_changed_set(changed):
    """For any subset of perturbed layers, the extracted parameter update
    contains exactly that subset (Merkle and flat paths agree)."""
    base = make_tiny_cnn(seed=1)
    state = OrderedDict((k, v.copy()) for k, v in base.state_dict().items())
    for key in changed:
        state[key] = state[key] + 1.0
    current_tree = MerkleTree.from_layer_hashes(state_dict_hashes(state))
    base_tree = MerkleTree.from_state_dict(base.state_dict())
    update, diff = extract_parameter_update(state, current_tree, base_tree)
    assert set(update) == changed
    flat_update, _ = extract_parameter_update(
        state, current_tree, base_tree, use_merkle=False
    )
    assert list(update) == list(flat_update)


@settings(max_examples=8, deadline=None)
@given(
    changed_per_level=st.lists(
        st.sets(st.sampled_from(LAYER_KEYS), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    )
)
def test_property_pua_chain_recovery_is_exact(tmp_path_factory, changed_per_level):
    """Any chain of layer-subset updates recovers bitwise at every level."""
    tmp_path = tmp_path_factory.mktemp("prop-pua")
    service = ParameterUpdateSaveService(DocumentStore(), FileStore(tmp_path / "files"))
    model = make_tiny_cnn(seed=2)
    model_id = service.save_model(ModelSaveInfo(model, tiny_arch()))
    expected_states = [model.state_dict()]
    ids = [model_id]

    state = OrderedDict((k, v.copy()) for k, v in model.state_dict().items())
    for level, changed in enumerate(changed_per_level):
        for key in changed:
            state[key] = state[key] + (level + 1.0)
        derived = make_tiny_cnn()
        derived.load_state_dict(state)
        model_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=ids[-1])
        )
        ids.append(model_id)
        expected_states.append(derived.state_dict())

    # the deepest model and one intermediate model both recover exactly
    for index in (len(ids) - 1, len(ids) // 2):
        recovered = service.recover_model(ids[index])
        assert recovered.verified is not False
        got = recovered.model.state_dict()
        for key, value in expected_states[index].items():
            assert np.array_equal(value, got[key]), (index, key)


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=0, max_size=512))
def test_property_filestore_round_trip(tmp_path_factory, data):
    store = FileStore(tmp_path_factory.mktemp("prop-fs"))
    file_id = store.save_bytes(data)
    assert store.recover_bytes(file_id) == data
    assert store.size(file_id) == len(data)


@settings(max_examples=15, deadline=None)
@given(
    documents=st.lists(
        st.dictionaries(
            st.sampled_from(["name", "epoch", "node"]),
            st.one_of(st.integers(-5, 5), st.text(max_size=4)),
            max_size=3,
        ),
        max_size=6,
    )
)
def test_property_docstore_insert_then_find_all(documents):
    store = DocumentStore()
    collection = store.collection("props")
    ids = [collection.insert_one(dict(document)) for document in documents]
    assert collection.count() == len(documents)
    for doc_id, original in zip(ids, documents):
        fetched = collection.get(doc_id)
        for key, value in original.items():
            assert fetched[key] == value
