"""Neutral exchange format: inference interchange yes, provenance no."""

import numpy as np
import pytest

from repro.core.export import (
    InsufficientProvenanceError,
    NeutralModel,
    assert_sufficient_for_training,
    export_neutral,
    load_neutral,
)
from repro.nn import serialization
from tests.conftest import make_tiny_cnn


class TestRoundTrip:
    def test_parameters_survive_exactly(self, tmp_path):
        model = make_tiny_cnn(seed=3)
        path = tmp_path / "model.neutral"
        written = export_neutral(model, path)
        assert path.stat().st_size == written

        neutral = load_neutral(path)
        fresh = make_tiny_cnn(seed=99)
        neutral.apply_to(fresh)
        for key, value in model.state_dict().items():
            assert np.array_equal(value, fresh.state_dict()[key]), key

    def test_layers_describe_structure(self, tmp_path):
        model = make_tiny_cnn()
        path = tmp_path / "model.neutral"
        export_neutral(model, path)
        neutral = load_neutral(path)
        types = [layer["type"] for layer in neutral.layers]
        assert "Conv2d" in types and "BatchNorm2d" in types and "Linear" in types

    def test_summary_renders(self, tmp_path):
        model = make_tiny_cnn()
        path = tmp_path / "model.neutral"
        export_neutral(model, path)
        text = load_neutral(path).summary()
        assert "tensors" in text and "Conv2d" in text


class TestFormatValidation:
    def test_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "other.bin"
        serialization.save({"format": "something-else"}, path)
        with pytest.raises(Exception, match="not a repro-neutral"):
            load_neutral(path)

    def test_rejects_future_versions(self, tmp_path):
        path = tmp_path / "future.bin"
        serialization.save(
            {"format": "repro-neutral", "version": 99, "layers": [], "parameters": {}},
            path,
        )
        with pytest.raises(Exception, match="version"):
            load_neutral(path)


class TestInsufficiencyForTraining:
    """Paper §2.2: neutral formats cannot reproduce model training."""

    def test_neutral_model_rejected_with_explanation(self, tmp_path):
        model = make_tiny_cnn()
        path = tmp_path / "model.neutral"
        export_neutral(model, path)
        neutral = load_neutral(path)
        with pytest.raises(InsufficientProvenanceError) as excinfo:
            assert_sufficient_for_training(neutral)
        message = str(excinfo.value)
        for requirement in ("optimizer", "PRNG", "dataset", "provenance"):
            assert requirement in message

    def test_raw_payload_dict_rejected(self):
        with pytest.raises(InsufficientProvenanceError):
            assert_sufficient_for_training({"format": "repro-neutral"})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(InsufficientProvenanceError):
            assert_sufficient_for_training(42)
