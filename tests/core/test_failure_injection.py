"""Failure injection: corrupted stores, broken references, torn payloads.

A model-management system's error paths matter as much as its happy paths:
these tests corrupt each persistence layer in turn and check that recovery
fails *loudly and precisely* instead of returning a wrong model.
"""

import numpy as np
import pytest

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    RecoveryError,
    VerificationError,
)
from repro.core.schema import ENVIRONMENTS, MODELS, TRAIN_INFO, WRAPPERS
from repro.nn import serialization
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for architecture refs."""
    return make_tiny_cnn(num_classes=num_classes)


def tiny_arch():
    return ArchitectureRef.from_factory(
        "tests.core.test_failure_injection", "build_probe_model", {"num_classes": 10}
    )


def perturb(model, key="5.bias"):
    derived = make_tiny_cnn()
    state = {k: v.copy() for k, v in model.state_dict().items()}
    state[key] = state[key] + 1.0
    derived.load_state_dict(state)
    return derived


class TestFileCorruption:
    def test_flipped_bit_in_parameters_detected(self, mem_doc_store, file_store):
        """Corruption inside a stored file trips the digest check."""
        service = BaselineSaveService(mem_doc_store, file_store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        path = file_store.root / document["parameters_file"]
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(IOError, match="corrupt"):
            service.recover_model(model_id)

    def test_deleted_parameters_file(self, mem_doc_store, file_store):
        service = BaselineSaveService(mem_doc_store, file_store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        file_store.delete(document["parameters_file"])
        with pytest.raises(KeyError):
            service.recover_model(model_id)

    def test_corrupt_update_file_mid_chain(self, mem_doc_store, file_store):
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        middle = perturb(base)
        middle_id = service.save_model(
            ModelSaveInfo(middle, tiny_arch(), base_model_id=base_id)
        )
        top = perturb(middle)
        top_id = service.save_model(
            ModelSaveInfo(top, tiny_arch(), base_model_id=middle_id)
        )
        middle_doc = mem_doc_store.collection(MODELS).get(middle_id)
        path = file_store.root / middle_doc["update_file"]
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(IOError, match="corrupt"):
            service.recover_model(top_id)


class TestDocumentTampering:
    def test_swapped_update_file_caught_by_checksum(self, mem_doc_store, file_store):
        """Pointing a model at the *wrong* (but valid) update is caught by
        the Merkle-root verification, not the file digest."""
        service = ParameterUpdateSaveService(mem_doc_store, file_store)
        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        a = perturb(base)
        a_id = service.save_model(ModelSaveInfo(a, tiny_arch(), base_model_id=base_id))
        b = perturb(base, key="5.weight")
        b_id = service.save_model(ModelSaveInfo(b, tiny_arch(), base_model_id=base_id))

        doc_a = mem_doc_store.collection(MODELS).get(a_id)
        doc_b = mem_doc_store.collection(MODELS).get(b_id)
        doc_a["update_file"] = doc_b["update_file"]
        doc_a["updated_layers"] = doc_b["updated_layers"]
        mem_doc_store.collection(MODELS).replace_one(a_id, doc_a)
        with pytest.raises(VerificationError):
            service.recover_model(a_id)

    def test_missing_environment_document_fails_env_check_only(
        self, mem_doc_store, file_store
    ):
        service = BaselineSaveService(mem_doc_store, file_store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        mem_doc_store.collection(ENVIRONMENTS).delete_one(document["environment_id"])
        # without the env check recovery still works...
        assert service.recover_model(model_id).verified is True
        # ...with it, the dangling reference surfaces
        with pytest.raises(KeyError):
            service.recover_model(model_id, check_env=True)

    def test_document_without_recovery_route(self, mem_doc_store, file_store):
        service = BaselineSaveService(mem_doc_store, file_store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        del document["parameters_file"]
        document["approach"] = "mystery"
        mem_doc_store.collection(MODELS).replace_one(model_id, document)
        with pytest.raises(RecoveryError, match="neither parameters"):
            service.recover_model(model_id)


class TestTornPayloads:
    def test_truncated_serialization_fails_cleanly(self):
        payload = serialization.dumps({"w": np.ones((8, 8))})
        with pytest.raises(Exception):
            serialization.loads(payload[: len(payload) // 2 - 3])

    def test_truncated_parameters_file(self, mem_doc_store, file_store):
        service = BaselineSaveService(mem_doc_store, file_store)
        model_id = service.save_model(ModelSaveInfo(make_tiny_cnn(), tiny_arch()))
        document = mem_doc_store.collection(MODELS).get(model_id)
        path = file_store.root / document["parameters_file"]
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(Exception):
            service.recover_model(model_id)


class TestWrapperFailures:
    def test_missing_wrapper_document(self, mem_doc_store, file_store, tmp_path):
        from repro.core import ProvenanceSaveService
        from repro.workloads import generate_dataset
        from repro.workloads.relations import TrainingRun

        service = ProvenanceSaveService(mem_doc_store, file_store, scratch_dir=tmp_path)
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        dataset_root = generate_dataset("co512", tmp_path / "d", scale=1 / 2048)
        run = TrainingRun(
            dataset_dir=dataset_root, number_epochs=1, number_batches=1,
            seed=1, image_size=8, num_classes=10,
        )
        model = make_tiny_cnn()
        model.load_state_dict(base.state_dict())
        run.execute(model)
        model_id = service.save_model(run.to_provenance_info(base_id, trained_model=model))

        document = mem_doc_store.collection(MODELS).get(model_id)
        train_document = mem_doc_store.collection(TRAIN_INFO).get(document["train_info_id"])
        mem_doc_store.collection(WRAPPERS).delete_one(train_document["optimizer_wrapper"])
        with pytest.raises(KeyError):
            service.recover_model(model_id)

    def test_deleted_state_file(self, mem_doc_store, file_store, tmp_path):
        from repro.core import ProvenanceSaveService
        from repro.workloads import generate_dataset
        from repro.workloads.relations import TrainingRun

        service = ProvenanceSaveService(mem_doc_store, file_store, scratch_dir=tmp_path)
        base = make_tiny_cnn()
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch()))
        dataset_root = generate_dataset("co512", tmp_path / "d", scale=1 / 2048)
        run = TrainingRun(
            dataset_dir=dataset_root, number_epochs=1, number_batches=1,
            seed=1, image_size=8, num_classes=10,
        )
        model = make_tiny_cnn()
        model.load_state_dict(base.state_dict())
        run.execute(model)
        model_id = service.save_model(run.to_provenance_info(base_id, trained_model=model))

        document = mem_doc_store.collection(MODELS).get(model_id)
        train_document = mem_doc_store.collection(TRAIN_INFO).get(document["train_info_id"])
        wrapper = mem_doc_store.collection(WRAPPERS).get(train_document["optimizer_wrapper"])
        file_store.delete(wrapper["state_file_id"])
        with pytest.raises(KeyError):
            service.recover_model(model_id)
