"""The ``mmlib`` command-line interface."""

import json

import numpy as np
import pytest

from repro import cli
from repro.core import ArchitectureRef, BaselineSaveService, ModelSaveInfo
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from repro.nn import serialization
from repro.nn.models import create_model
from tests.conftest import make_tiny_cnn


def build_probe_model(num_classes=10):
    """Importable factory for CLI saves."""
    return make_tiny_cnn(num_classes=num_classes)


FACTORY = "tests.test_cli:build_probe_model"


@pytest.fixture
def stores(tmp_path):
    docs = tmp_path / "docs"
    files = tmp_path / "files"
    return str(docs), str(files)


@pytest.fixture
def saved_model(stores):
    docs, files = stores
    service = BaselineSaveService(DocumentStore(docs), FileStore(files))
    model = make_tiny_cnn(seed=5)
    arch = ArchitectureRef.from_factory(
        "tests.test_cli", "build_probe_model", {"num_classes": 10}
    )
    model_id = service.save_model(ModelSaveInfo(model, arch, use_case="U_1"))
    return model_id, model


def run_cli(*argv) -> int:
    return cli.main(list(argv))


class TestListInspect:
    def test_list_empty(self, stores, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "list") == 0
        assert "no models saved" in capsys.readouterr().out

    def test_list_shows_saved_model(self, stores, saved_model, capsys):
        docs, files = stores
        model_id, _ = saved_model
        assert run_cli("--docs", docs, "--files", files, "list") == 0
        out = capsys.readouterr().out
        assert model_id in out and "baseline" in out

    def test_list_filters_by_use_case(self, stores, saved_model, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "list", "--use-case", "U_9") == 0
        assert "no models saved" in capsys.readouterr().out

    def test_inspect(self, stores, saved_model, capsys):
        docs, files = stores
        model_id, _ = saved_model
        assert run_cli("--docs", docs, "--files", files, "inspect", model_id) == 0
        out = capsys.readouterr().out
        assert "storage:" in out and "parameters" in out

    def test_inspect_missing_model_errors(self, stores, capsys):
        docs, files = stores
        code = run_cli("--docs", docs, "--files", files, "inspect", "model-" + "0" * 32)
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSaveRecover:
    def test_save_then_recover_round_trip(self, stores, tmp_path, capsys):
        docs, files = stores
        model = make_tiny_cnn(seed=9)
        state_path = tmp_path / "input.state"
        serialization.save(model.state_dict(), state_path)

        assert run_cli(
            "--docs", docs, "--files", files, "save",
            "--factory", FACTORY,
            "--factory-kwargs", json.dumps({"num_classes": 10}),
            "--state", str(state_path),
            "--use-case", "U_1",
        ) == 0
        model_id = capsys.readouterr().out.strip()
        assert model_id.startswith("model-")

        out_path = tmp_path / "recovered.state"
        assert run_cli(
            "--docs", docs, "--files", files, "recover", model_id, "--out", str(out_path)
        ) == 0
        recovered = serialization.load(out_path)
        for key, value in model.state_dict().items():
            assert np.array_equal(value, recovered[key])

    def test_save_with_unknown_approach_errors(self, stores, capsys):
        docs, files = stores
        code = run_cli(
            "--docs", docs, "--files", files, "save",
            "--factory", FACTORY, "--approach", "zipper",
        )
        assert code == 2

    def test_lineage_and_tree(self, stores, saved_model, capsys):
        docs, files = stores
        model_id, _ = saved_model
        assert run_cli("--docs", docs, "--files", files, "lineage", model_id) == 0
        assert model_id in capsys.readouterr().out
        assert run_cli("--docs", docs, "--files", files, "tree", model_id) == 0
        assert model_id in capsys.readouterr().out

    def test_storage_report(self, stores, saved_model, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "storage") == 0
        assert "TOTAL" in capsys.readouterr().out


class TestDeleteGc:
    def test_delete_and_gc(self, stores, saved_model, capsys):
        docs, files = stores
        model_id, _ = saved_model
        FileStore(files).save_bytes(b"orphan bytes")
        assert run_cli("--docs", docs, "--files", files, "gc") == 0
        assert "removed 1 orphaned" in capsys.readouterr().out
        assert run_cli("--docs", docs, "--files", files, "delete", model_id) == 0
        assert run_cli("--docs", docs, "--files", files, "list") == 0
        assert "no models saved" in capsys.readouterr().out.splitlines()[-1]


class TestProbeEnv:
    def test_probe_reproducible_model(self, capsys):
        code = run_cli(
            "probe", "--factory", FACTORY,
            "--factory-kwargs", json.dumps({"num_classes": 10}),
            "--image-size", "8",
        )
        assert code == 0
        assert "training reproducible: True" in capsys.readouterr().out

    def test_probe_save_and_compare(self, tmp_path, capsys):
        summary = tmp_path / "probe.json"
        assert run_cli(
            "probe", "--factory", FACTORY,
            "--factory-kwargs", json.dumps({"num_classes": 10}),
            "--image-size", "8", "--save", str(summary),
        ) == 0
        capsys.readouterr()
        assert run_cli(
            "probe", "--factory", FACTORY,
            "--factory-kwargs", json.dumps({"num_classes": 10}),
            "--image-size", "8", "--compare", str(summary),
        ) == 0
        assert "reproducible" in capsys.readouterr().out

    def test_env_summary(self, capsys):
        assert run_cli("env") == 0
        payload = json.loads(capsys.readouterr().out)
        assert "numpy_version" in payload
        assert "packages" in payload["libraries"]

    def test_env_full_lists_packages(self, capsys):
        assert run_cli("env", "--full") == 0
        payload = json.loads(capsys.readouterr().out)
        assert "numpy" in payload["libraries"]


class TestParser:
    def test_bad_factory_spec(self, capsys):
        assert run_cli("probe", "--factory", "nomodule") == 2

    def test_missing_stores_error(self, capsys):
        assert run_cli("list") == 2
        assert "requires --docs" in capsys.readouterr().err


class TestEnvLockfile:
    def test_lock_then_check(self, tmp_path, capsys):
        lockfile = tmp_path / "env.lock"
        assert run_cli("env", "--lock", str(lockfile)) == 0
        assert lockfile.exists()
        capsys.readouterr()
        assert run_cli("env", "--check", str(lockfile)) == 0
        assert "matches lockfile" in capsys.readouterr().out

    def test_check_drifted_lockfile_fails(self, tmp_path, capsys):
        lockfile = tmp_path / "env.lock"
        run_cli("env", "--lock", str(lockfile))
        payload = json.loads(lockfile.read_text())
        payload["framework_version"] = "0.0.0-other"
        lockfile.write_text(json.dumps(payload))
        capsys.readouterr()
        assert run_cli("env", "--check", str(lockfile)) == 1
        assert "drift" in capsys.readouterr().err


class TestVerifyAndSquash:
    @pytest.fixture
    def chain(self, stores):
        from repro.core import ParameterUpdateSaveService

        docs, files = stores
        service = ParameterUpdateSaveService(DocumentStore(docs), FileStore(files))
        arch = ArchitectureRef.from_factory(
            "tests.test_cli", "build_probe_model", {"num_classes": 10}
        )
        root = make_tiny_cnn(seed=1)
        root_id = service.save_model(ModelSaveInfo(root, arch, use_case="U_1"))
        derived = make_tiny_cnn()
        state = {k: v.copy() for k, v in root.state_dict().items()}
        state["5.bias"] = state["5.bias"] + 1.0
        derived.load_state_dict(state)
        derived_id = service.save_model(
            ModelSaveInfo(derived, arch, base_model_id=root_id, use_case="U_3-1-1")
        )
        return root_id, derived_id

    def test_verify_clean_catalog(self, stores, chain, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "verify") == 0
        out = capsys.readouterr().out
        assert "2 model(s) checked, 0 failure(s)" in out

    def test_squash_promotes_and_deletes(self, stores, chain, capsys):
        docs, files = stores
        _, derived_id = chain
        assert run_cli("--docs", docs, "--files", files, "squash", derived_id) == 0
        assert "deleted 1 exclusive ancestor" in capsys.readouterr().out
        assert run_cli("--docs", docs, "--files", files, "verify") == 0
        assert "1 model(s) checked" in capsys.readouterr().out

    def test_promote_only_keeps_ancestors(self, stores, chain, capsys):
        docs, files = stores
        root_id, derived_id = chain
        assert run_cli(
            "--docs", docs, "--files", files, "squash", derived_id, "--promote-only"
        ) == 0
        capsys.readouterr()
        assert run_cli("--docs", docs, "--files", files, "inspect", root_id) == 0


class TestCompact:
    @pytest.fixture
    def deep_chain(self, stores):
        from repro.core import ParameterUpdateSaveService

        docs, files = stores
        service = ParameterUpdateSaveService(DocumentStore(docs), FileStore(files))
        arch = ArchitectureRef.from_factory(
            "tests.test_cli", "build_probe_model", {"num_classes": 10}
        )
        model = make_tiny_cnn(seed=1)
        ids = [service.save_model(ModelSaveInfo(model, arch, use_case="U_1"))]
        for _ in range(5):
            state = {k: v.copy() for k, v in model.state_dict().items()}
            state["5.bias"] = state["5.bias"] + 1.0
            model = make_tiny_cnn()
            model.load_state_dict(state)
            ids.append(
                service.save_model(ModelSaveInfo(model, arch, base_model_id=ids[-1]))
            )
        return ids

    def test_dry_run_prints_plan(self, stores, deep_chain, capsys):
        docs, files = stores
        assert run_cli(
            "--docs", docs, "--files", files, "compact",
            "--max-depth", "4", "--dry-run",
        ) == 0
        out = capsys.readouterr().out
        assert f"would materialize {deep_chain[4]}" in out

    def test_compact_then_idempotent(self, stores, deep_chain, capsys):
        docs, files = stores
        assert run_cli(
            "--docs", docs, "--files", files, "compact", "--max-depth", "4"
        ) == 0
        out = capsys.readouterr().out
        assert f"materialized {deep_chain[4]}" in out
        assert "compacted 1 model(s)" in out
        assert run_cli(
            "--docs", docs, "--files", files, "compact",
            "--max-depth", "4", "--dry-run",
        ) == 0
        assert "nothing to do" in capsys.readouterr().out
        assert run_cli("--docs", docs, "--files", files, "verify") == 0

    def test_json_report(self, stores, deep_chain, capsys):
        docs, files = stores
        assert run_cli(
            "--docs", docs, "--files", files, "compact",
            "--max-depth", "4", "--json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_depth"] == 4
        assert [m["model_id"] for m in payload["materialized"]] == [deep_chain[4]]

    def test_codec_flag_shapes_new_writes(self, tmp_path, capsys):
        # zeroed parameters compress well; random conv weights would not
        model = make_tiny_cnn(seed=2)
        state = {k: np.zeros_like(np.asarray(v)) for k, v in model.state_dict().items()}
        state_file = tmp_path / "zeros.state"
        serialization.save(state, state_file)
        plain = tmp_path / "plain"
        packed = tmp_path / "packed"
        for workdir, codec in ((plain, "none"), (packed, "zlib")):
            assert run_cli(
                "--docs", str(workdir / "docs"), "--files", str(workdir / "files"),
                "--codec", codec,
                "save", "--factory", FACTORY, "--state", str(state_file),
                "--use-case", "U_1",
            ) == 0
        capsys.readouterr()
        plain_bytes = FileStore(plain / "files").total_bytes()
        packed_bytes = FileStore(packed / "files").total_bytes()
        assert packed_bytes < plain_bytes
        # the compressed store still verifies end to end
        assert run_cli(
            "--docs", str(packed / "docs"), "--files", str(packed / "files"),
            "verify",
        ) == 0


class TestFsckJson:
    def test_clean_store_emits_json_and_exits_zero(self, stores, saved_model, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "fsck", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["issues"] == []
        assert payload["checked_models"] == 1

    def test_unrepaired_issues_exit_one_with_machine_readable_report(
        self, stores, saved_model, capsys
    ):
        docs, files = stores
        model_id, _ = saved_model
        # damage: the model's parameters manifest disappears from the store
        document = DocumentStore(docs).collection("models").get(model_id)
        FileStore(files).delete(document["parameters_file"])

        code = run_cli(
            "--docs", docs, "--files", files, "fsck", "--no-repair", "--json"
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["unrepaired"] > 0
        assert any(issue["repaired"] is False for issue in payload["issues"])

    def test_plain_output_unchanged_without_the_flag(self, stores, saved_model, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "fsck") == 0
        out = capsys.readouterr().out
        assert "fsck" in out or "issue" in out or "clean" in out


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _fresh_obs(self):
        from repro import obs

        obs.reset()
        yield
        obs.reset()

    def test_stats_prometheus_is_valid_exposition(self, saved_model, capsys):
        import re

        assert run_cli("stats", "--prometheus") == 0
        out = capsys.readouterr().out
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.eE+-]+$"
        )
        for line in out.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) ", line), line
            else:
                assert line_re.match(line), line
        # preregistered families make the core surface visible even at zero
        for family in (
            "mmlib_chunk_cache_hits_total",
            "mmlib_retry_attempts_total",
            "mmlib_network_round_trips_total",
            "mmlib_cluster_quorum_write_failures_total",
        ):
            assert family in out
        # the in-process save above reached the same global registry
        assert 'mmlib_saves_total{approach="baseline"} 1' in out

    def test_stats_json_snapshot(self, saved_model, capsys):
        assert run_cli("stats") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mmlib_saves_total"]["type"] == "counter"
        [saves] = [
            s for s in payload["mmlib_saves_total"]["series"]
            if s["labels"] == {"approach": "baseline"}
        ]
        assert saves["value"] == 1

    def test_trace_jsonl_shows_in_process_spans(self, saved_model, capsys):
        assert run_cli("trace", "--last", "50") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        spans = [json.loads(line) for line in lines]
        assert any(span["name"] == "service.save_model" for span in spans)
        assert all(
            {"span_id", "trace_id", "duration_s", "status"} <= set(span)
            for span in spans
        )

    def test_trace_empty_process_hints_at_demo(self, capsys):
        assert run_cli("trace") == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "--demo" in captured.err

    def test_events_filter_by_kind(self, capsys):
        from repro import obs

        obs.event("retry", op="docs.get", attempt=1)
        obs.event("fault", fault="outage")
        assert run_cli("events", "--kind", "retry") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["retry"]

    def test_fsck_json_includes_step_timings(self, stores, saved_model, capsys):
        docs, files = stores
        assert run_cli("--docs", docs, "--files", files, "fsck", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        steps = payload["step_seconds"]
        assert set(steps) == {
            "journals", "segments", "compaction", "documents", "chunks",
            "orphan_files", "refcounts", "replication", "hints",
            "orphan_documents",
        }
        assert all(seconds >= 0.0 for seconds in steps.values())


class TestDeadlineFlag:
    def test_rejects_non_positive_deadline(self, capsys):
        assert run_cli("--deadline", "0", "stats") == 2
        assert "must be positive" in capsys.readouterr().err

    def test_subcommand_runs_under_ambient_scope(self, monkeypatch):
        from repro import deadline as deadline_mod

        seen = {}

        def probe_env(args):
            seen["remaining"] = deadline_mod.remaining()
            return 0

        monkeypatch.setattr(cli, "cmd_env", probe_env)
        assert run_cli("--deadline", "3.5", "env") == 0
        assert 0 < seen["remaining"] <= 3.5

    def test_no_flag_means_unbounded(self, monkeypatch):
        from repro import deadline as deadline_mod

        seen = {}

        def probe_env(args):
            seen["remaining"] = deadline_mod.remaining()
            return 0

        monkeypatch.setattr(cli, "cmd_env", probe_env)
        assert run_cli("env") == 0
        assert seen["remaining"] is None


class TestServe:
    def test_serve_starts_answers_and_exits(self, stores, capsys):
        docs, files = stores
        code = run_cli(
            "--docs", docs, "--files", files,
            "serve", "--tenants", "acme,globex",
            "--port", "0", "--serve-seconds", "0.2", "--no-maintenance",
        )
        assert code == 0
        assert "mmlib gateway serving on" in capsys.readouterr().out

    def test_serve_requires_a_tenant(self, stores, capsys):
        docs, files = stores
        code = run_cli(
            "--docs", docs, "--files", files,
            "serve", "--tenants", " , ", "--port", "0", "--serve-seconds", "0.1",
        )
        assert code == 2
        assert "at least one tenant" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        args = cli.build_parser().parse_args(
            ["--docs", "d", "--files", "f", "serve", "--tenants", "acme"]
        )
        assert args.port == 7070
        assert args.workers == 4
        assert args.max_inflight == 32
        assert args.max_concurrency == 4
        assert args.approach == "param_update"
        assert args.compact_depth >= 1
