"""Retry and fault instrumentation: events, counters, pinned backoff."""

import random

import pytest

from repro import obs
from repro.errors import TransientStoreError
from repro.faults import FaultInjector
from repro.retry import RetryPolicy


def flaky(failures: int, result="ok"):
    """A callable that raises ``failures`` transient errors, then succeeds."""
    remaining = {"n": failures}

    def fn():
        if remaining["n"]:
            remaining["n"] -= 1
            raise TransientStoreError("injected")
        return result

    return fn


def recompute_delays(policy: RetryPolicy, attempts: int) -> list[float]:
    """The jittered backoff sequence a fresh policy with these knobs emits."""
    rng = random.Random(0)  # the policy's seed
    delays = []
    for attempt in range(1, attempts + 1):
        delay = min(
            policy.max_delay_s,
            policy.base_delay_s * policy.multiplier ** (attempt - 1),
        )
        delay *= 1.0 - policy.jitter * rng.random()
        delays.append(delay)
    return delays


class TestRetryEvents:
    def test_each_retry_emits_event_and_counter(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, sleep=None)
        assert policy.call(flaky(3), op="docs.get") == "ok"
        events = obs.events().events(kind="retry")
        assert [e.fields["attempt"] for e in events] == [1, 2, 3]
        assert {e.fields["op"] for e in events} == {"docs.get"}
        assert {e.fields["exception"] for e in events} == {"TransientStoreError"}
        assert obs.registry().value("mmlib_retry_attempts_total", op="docs.get") == 3

    def test_event_delays_match_the_seeded_backoff_sequence(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, multiplier=2.0,
            jitter=0.5, seed=0, sleep=None,
        )
        policy.call(flaky(4), op="chunk.read")
        events = obs.events().events(kind="retry")
        observed = [e.fields["delay_s"] for e in events]
        assert observed == pytest.approx(recompute_delays(policy, 4))

    def test_exhaustion_emits_terminal_event(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=None)
        with pytest.raises(TransientStoreError):
            policy.call(flaky(99), op="file.write")
        [exhausted] = obs.events().events(kind="retry_exhausted")
        assert exhausted.fields == {
            "op": "file.write", "attempts": 3, "exception": "TransientStoreError",
        }
        assert obs.registry().value("mmlib_retry_exhausted_total", op="file.write") == 1
        # two retries happened before the terminal third attempt
        assert obs.registry().value("mmlib_retry_attempts_total", op="file.write") == 2

    def test_success_without_failures_emits_nothing(self):
        policy = RetryPolicy(max_attempts=3, sleep=None)
        policy.call(lambda: 42, op="quiet")
        assert obs.events().count("retry") == 0
        assert obs.registry().value("mmlib_retry_attempts_total", op="quiet") == 0


class TestFaultEvents:
    def test_every_injected_fault_is_an_event_and_a_counter(self):
        faults = FaultInjector(seed=7, error_rate=0.3, sleep=None)
        policy = RetryPolicy(max_attempts=100, base_delay_s=0.0, sleep=None)

        def op():
            faults.fail_point("chunk.read")
            return "done"

        for _ in range(50):
            assert policy.call(op, op="chunk.read") == "done"

        injected = faults.stats["errors"]
        assert injected > 0  # seed 7 at 30% over 50+ ops must fire
        assert obs.events().count("fault") == injected
        assert (
            obs.registry().value("mmlib_faults_injected_total", kind="error")
            == injected
        )
        # every injected transient fault was absorbed by exactly one retry
        assert obs.events().count("retry") == injected
        assert policy.stats["retries"] == injected
