"""Fixtures for the observability-plane tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _fresh_obs():
    """Zero the process-wide metrics and clear span/event buffers.

    Values are reset in place, so instrument handles cached by components
    built in earlier tests stay valid.
    """
    obs.reset()
    yield
    obs.reset()
