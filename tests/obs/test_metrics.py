"""The metrics registry: instruments, families, exporters, null mode."""

import json
import re

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, NullRegistry, Registry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_observe_and_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        assert histogram.cumulative_counts() == [
            (0.1, 1),
            (1.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]

    def test_histogram_boundary_is_inclusive(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(1.0)
        assert histogram.cumulative_counts() == [(1.0, 1), (float("inf"), 1)]

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_same_call_is_declaration_and_lookup(self):
        registry = Registry()
        a = registry.counter("mmlib_test_total", "help", op="x")
        b = registry.counter("mmlib_test_total", op="x")
        assert a is b
        a.inc()
        assert registry.value("mmlib_test_total", op="x") == 1.0

    def test_label_order_does_not_matter(self):
        registry = Registry()
        a = registry.counter("mmlib_test_total", a="1", b="2")
        b = registry.counter("mmlib_test_total", b="2", a="1")
        assert a is b

    def test_distinct_labels_distinct_children(self):
        registry = Registry()
        registry.counter("mmlib_test_total", op="x").inc()
        registry.counter("mmlib_test_total", op="y").inc(2)
        assert registry.value("mmlib_test_total", op="x") == 1.0
        assert registry.value("mmlib_test_total", op="y") == 2.0

    def test_kind_conflict_raises(self):
        registry = Registry()
        registry.counter("mmlib_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("mmlib_test_total")

    def test_invalid_name_raises(self):
        registry = Registry()
        for bad in ("", "9starts_with_digit", "has-dash", "has space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_value_of_absent_series_is_zero(self):
        registry = Registry()
        assert registry.value("mmlib_never_seen_total") == 0.0
        registry.counter("mmlib_test_total", op="x")
        assert registry.value("mmlib_test_total", op="other") == 0.0

    def test_reset_zeroes_in_place(self):
        registry = Registry()
        handle = registry.counter("mmlib_test_total")
        handle.inc(7)
        registry.reset()
        assert handle.value == 0.0
        handle.inc()  # the cached handle keeps working after reset
        assert registry.value("mmlib_test_total") == 1.0

    def test_snapshot_shape(self):
        registry = Registry()
        registry.counter("mmlib_test_total", "things", op="x").inc(3)
        registry.histogram("mmlib_test_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["mmlib_test_total"] == {
            "type": "counter",
            "help": "things",
            "series": [{"labels": {"op": "x"}, "value": 3.0}],
        }
        histogram = snapshot["mmlib_test_seconds"]["series"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"] == [[1.0, 1], ["+Inf", 1]]
        json.dumps(snapshot)  # fully JSON-serializable


PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" [0-9.eE+-]+(inf)?$"                # value
)


class TestPrometheusExport:
    def test_every_line_is_valid_exposition(self):
        registry = Registry()
        registry.counter("mmlib_test_total", "helpful", op="save").inc(3)
        registry.gauge("mmlib_test_bytes").set(128)
        registry.histogram("mmlib_test_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) mmlib_\w+", line), line
            else:
                assert PROM_LINE.match(line), line

    def test_histogram_series(self):
        registry = Registry()
        registry.histogram("mmlib_test_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert 'mmlib_test_seconds_bucket{le="1.0"} 1' in text
        assert 'mmlib_test_seconds_bucket{le="+Inf"} 1' in text
        assert "mmlib_test_seconds_sum 0.5" in text
        assert "mmlib_test_seconds_count 1" in text

    def test_label_escaping(self):
        registry = Registry()
        registry.counter("mmlib_test_total", detail='say "hi"\nbye\\now').inc()
        text = registry.to_prometheus()
        assert 'detail="say \\"hi\\"\\nbye\\\\now"' in text

    def test_whole_values_render_as_ints(self):
        registry = Registry()
        registry.counter("mmlib_test_total").inc(3)
        assert "mmlib_test_total 3" in registry.to_prometheus().splitlines()

    def test_empty_registry_exports_empty(self):
        assert Registry().to_prometheus() == ""
        assert Registry().snapshot() == {}


class TestNullRegistry:
    def test_disabled_is_shared_singleton(self):
        assert Registry.disabled() is Registry.disabled()
        assert isinstance(Registry.disabled(), NullRegistry)
        assert not Registry.disabled().enabled
        assert Registry().enabled

    def test_instruments_are_shared_noops(self):
        registry = NullRegistry()
        counter = registry.counter("mmlib_test_total")
        assert counter is registry.gauge("anything_else")
        counter.inc()
        counter.observe(1.0)
        counter.set(5)
        assert counter.value == 0.0
        assert counter.cumulative_counts() == []
        assert counter.buckets == DEFAULT_BUCKETS

    def test_exports_empty(self):
        registry = NullRegistry()
        registry.counter("mmlib_test_total").inc()
        assert registry.snapshot() == {}
        assert registry.to_prometheus() == ""
        assert registry.value("mmlib_test_total") == 0.0
