"""The structured event log and the injectable clock."""

import json

from repro.obs import EventLog, FakeClock, NullEventLog, SystemClock


class TestEventLog:
    def test_emit_records_in_order_with_sequence(self):
        log = EventLog(clock=FakeClock(wall_start=100.0))
        log.emit("retry", op="docs.get", attempt=1)
        log.emit("fault", fault="outage")
        first, second = log.events()
        assert (first.kind, first.seq) == ("retry", 1)
        assert (second.kind, second.seq) == ("fault", 2)
        assert first.fields == {"op": "docs.get", "attempt": 1}
        assert first.wall == 100.0

    def test_filter_by_kind_and_last(self):
        log = EventLog(clock=FakeClock())
        for index in range(4):
            log.emit("retry", attempt=index)
        log.emit("fault")
        assert log.count("retry") == 4
        assert log.count("fault") == 1
        assert [e.fields["attempt"] for e in log.events(kind="retry", last=2)] == [2, 3]

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(clock=FakeClock(), max_events=3)
        for index in range(5):
            log.emit("retry", attempt=index)
        assert [e.fields["attempt"] for e in log.events()] == [2, 3, 4]
        assert [e.seq for e in log.events()] == [3, 4, 5]  # seq keeps counting

    def test_to_dict_flattens_fields(self):
        log = EventLog(clock=FakeClock(wall_start=5.0))
        log.emit("cache_evict", digest="abc", nbytes=10)
        [event] = log.events()
        assert event.to_dict() == {
            "kind": "cache_evict", "seq": 1, "wall": 5.0,
            "digest": "abc", "nbytes": 10,
        }

    def test_jsonl_export(self):
        log = EventLog(clock=FakeClock())
        log.emit("retry", op="x")
        log.emit("fault", fault="torn_write")
        lines = log.to_jsonl().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["retry", "fault"]

    def test_reset_clears(self):
        log = EventLog(clock=FakeClock())
        log.emit("retry")
        log.reset()
        assert log.events() == []
        assert log.to_jsonl() == ""

    def test_null_log_is_a_noop(self):
        log = NullEventLog()
        log.emit("retry", op="x")
        assert not log.enabled
        assert log.events() == []
        assert log.count("retry") == 0
        assert log.to_jsonl() == ""


class TestClocks:
    def test_system_clock_perf_is_monotonic(self):
        clock = SystemClock()
        assert clock.perf() <= clock.perf()
        assert clock.now() > 1e9  # wall time, unix epoch seconds

    def test_fake_clock_auto_advances_per_perf_read(self):
        clock = FakeClock(start=10.0, tick=1.0)
        assert clock.perf() == 10.0  # pre-advance read: deltas are exact ticks
        assert clock.perf() == 11.0
        assert clock.perf_calls == 2

    def test_fake_clock_records_sleeps_without_waiting(self):
        clock = FakeClock(tick=0.5)
        clock.sleep(2.0)
        clock.sleep(0.25)
        assert clock.sleeps == [2.0, 0.25]

    def test_fake_clock_advance(self):
        clock = FakeClock(start=0.0, tick=1.0, wall_start=50.0)
        clock.advance(5.0)
        assert clock.now() == 55.0
        assert clock.perf() == 5.0
