"""The hierarchical tracer: nesting, threads, ring buffer, exporters."""

import json
import threading

import pytest

from repro.obs import FakeClock, NullTracer, Tracer


@pytest.fixture
def tracer():
    return Tracer(clock=FakeClock(tick=1.0))


class TestNesting:
    def test_root_span_mints_trace_id(self, tracer):
        with tracer.span("outer") as sp:
            assert sp.trace_id == sp.span_id
            assert sp.parent_id is None

    def test_child_inherits_trace_and_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len(tracer.trace_ids()) == 2

    def test_current_id_tracks_innermost(self, tracer):
        assert tracer.current_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_id() == (outer.span_id, outer.trace_id)
            with tracer.span("inner") as inner:
                assert tracer.current_id() == (inner.span_id, inner.trace_id)
            assert tracer.current_id() == (outer.span_id, outer.trace_id)
        assert tracer.current_id() is None

    def test_fake_clock_duration_is_exact(self, tracer):
        with tracer.span("timed") as sp:
            pass
        assert sp.duration_s == 1.0  # one tick between start and end perf reads

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("op", n=3) as sp:
            sp.set(result="ok")
        assert sp.attrs == {"n": 3, "result": "ok"}

    def test_error_span_records_and_reraises(self, tracer):
        with pytest.raises(KeyError):
            with tracer.span("failing"):
                raise KeyError("boom")
        [sp] = tracer.spans()
        assert sp.status == "error"
        assert sp.error == "KeyError"


class TestCrossThread:
    def test_attach_joins_worker_spans_to_the_tree(self, tracer):
        recorded = {}

        def worker(parent):
            with tracer.attach(parent):
                with tracer.span("prefetch.file") as sp:
                    recorded["span"] = sp

        with tracer.span("service.recover_model") as root:
            thread = threading.Thread(target=worker, args=(tracer.current_id(),))
            thread.start()
            thread.join()

        assert recorded["span"].trace_id == root.trace_id
        assert recorded["span"].parent_id == root.span_id

    def test_attach_none_is_a_noop(self, tracer):
        with tracer.attach(None):
            with tracer.span("orphan") as sp:
                pass
        assert sp.parent_id is None

    def test_threads_have_independent_stacks(self, tracer):
        seen = []

        def worker():
            seen.append(tracer.current_id())

        with tracer.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]


class TestRetentionAndExport:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert [sp.name for sp in tracer.spans()] == ["op2", "op3", "op4"]

    def test_spans_last_and_trace_filters(self, tracer):
        with tracer.span("a"):
            with tracer.span("a.child"):
                pass
        with tracer.span("b"):
            pass
        assert [sp.name for sp in tracer.spans(last=1)] == ["b"]
        first_trace = tracer.trace_ids()[0]
        assert {sp.name for sp in tracer.spans(trace_id=first_trace)} == {"a", "a.child"}

    def test_tree_nests_children(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        tree = tracer.tree(tracer.trace_ids()[0])
        [root] = tree["roots"]
        assert root["span"]["name"] == "root"
        [child] = root["children"]
        assert child["span"]["name"] == "child"
        assert child["children"][0]["span"]["name"] == "grandchild"

    def test_to_jsonl_round_trips(self, tracer):
        with tracer.span("op", n=1):
            pass
        [line] = tracer.to_jsonl().splitlines()
        payload = json.loads(line)
        assert payload["name"] == "op"
        assert payload["attrs"] == {"n": 1}
        assert payload["status"] == "ok"

    def test_reset_clears_buffer(self, tracer):
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.to_jsonl() == ""


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("op", n=1) as sp:
            sp.set(more="attrs")  # shared null span accepts anything
        with tracer.attach((1, 1)):
            pass
        assert tracer.current_id() is None
        assert tracer.spans() == []
        assert tracer.to_jsonl() == ""
        assert tracer.tree(1) == {"trace_id": 1, "roots": []}
