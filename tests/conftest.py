"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from repro.nn import rng


@pytest.fixture(autouse=True)
def _reset_rng():
    """Every test starts from a known seed and non-deterministic mode off.

    Deterministic mode is the default in tests so results are stable; tests
    exercising non-determinism opt out explicitly.
    """
    rng.manual_seed(0)
    rng.use_deterministic_algorithms(True)
    yield
    rng.use_deterministic_algorithms(False)


@pytest.fixture
def doc_store(tmp_path):
    return DocumentStore(tmp_path / "docs")


@pytest.fixture
def mem_doc_store():
    return DocumentStore()


@pytest.fixture
def file_store(tmp_path):
    return FileStore(tmp_path / "files")


def make_tiny_cnn(num_classes: int = 10, channels: int = 4, seed: int = 0) -> nn.Module:
    """A small Conv-BN-ReLU-Pool-Linear model for fast structural tests."""
    nn.manual_seed(seed)
    return nn.Sequential(
        nn.Conv2d(3, channels, kernel_size=3, padding=1, bias=False),
        nn.BatchNorm2d(channels),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(channels * 4 * 4, num_classes),
    )


@pytest.fixture
def tiny_cnn():
    return make_tiny_cnn()


@pytest.fixture
def tiny_batch():
    nn.manual_seed(1)
    images = nn.randn(4, 3, 8, 8)
    labels = np.array([0, 1, 2, 3], dtype=np.int64)
    return images, labels
