"""One code path for benchmark artifacts.

Every benchmark script historically wrote its ``BENCH_*.json`` twice —
once at the repo root, once under ``benchmarks/results/`` — with two
separately-serialized payloads that could (and did) drift.
:func:`write_results` makes ``benchmarks/results/`` the canonical
location: the payload is serialized once, written there, and *copied*
byte-for-byte to the repo root for quick inspection.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Canonical home of benchmark artifacts; the repo-root copy is a mirror.
RESULTS_DIR = ROOT / "benchmarks" / "results"


def _obs_snapshot() -> dict | None:
    """The process-wide metrics registry at write time, if obs is usable."""
    try:
        from repro import obs
    except ImportError:
        return None
    registry = obs.registry()
    if not registry.enabled:
        return None
    return registry.snapshot()


def write_results(name: str, results: dict, mirror_to_root: bool = True) -> Path:
    """Serialize ``results`` to ``benchmarks/results/<name>`` (canonical)
    and copy the file to the repo root.  Returns the canonical path.

    Every artifact carries an ``obs_metrics`` snapshot of the process-wide
    registry — whatever the benchmark's saves/recovers incremented — so a
    result file is self-describing about cache hits, round trips, retries,
    and quorum behaviour during the run."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    if "obs_metrics" not in results:
        snapshot = _obs_snapshot()
        if snapshot is not None:
            results = dict(results)
            results["obs_metrics"] = snapshot
    canonical = RESULTS_DIR / name
    canonical.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {canonical.relative_to(ROOT)}")
    if mirror_to_root:
        mirror = ROOT / name
        shutil.copy(canonical, mirror)
        print(f"copied to {mirror.relative_to(ROOT)}")
    return canonical
