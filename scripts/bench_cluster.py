#!/usr/bin/env python
"""Cluster-plane benchmark: recover throughput scaling and failover.

Builds a PUA (parameter-update) chain per cluster size over simulated
network members, then measures tip-model recovery with cold caches:

* **throughput scaling** — aggregate recover throughput is the bytes
  received across all member links divided by the cluster's link time
  (the *max* of the members' ``simulated_seconds`` — shards transfer in
  parallel, so the slowest link bounds wall-clock).  The acceptance bar:
  a 4-shard cluster recovers at >= 2x the single-shard baseline.
* **replica-down recovery** — with one member faulted into total outage
  (``error_rate=1.0``), reads fail over to the surviving replicas; the
  recovered state must be bitwise identical to the healthy recovery.

Writes ``BENCH_cluster.json`` into ``benchmarks/results/`` (canonical;
copied to the repo root).  Exit status is non-zero unless both bars hold
(``--no-check`` records without enforcing).

Usage::

    python scripts/bench_cluster.py [--snapshots 5] [--scale 0.25]
                                    [--shards 1 2 4]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core import ModelSaveInfo  # noqa: E402
from repro.core.save_info import ArchitectureRef  # noqa: E402
from repro.distsim import SharedStores, make_service  # noqa: E402
from repro.faults import FaultInjector  # noqa: E402
from repro.filestore import CELLULAR_LTE  # noqa: E402
from repro.nn.models import MODEL_REGISTRY, create_model  # noqa: E402

NUM_CLASSES = 100


def arch_ref(name: str, scale: float) -> ArchitectureRef:
    spec = MODEL_REGISTRY[name]
    return ArchitectureRef.from_factory(
        spec.factory.__module__,
        spec.factory.__name__,
        {"num_classes": NUM_CLASSES, "scale": scale},
    )


def perturb_classifier(model, level: float) -> None:
    """In-place partial update: only the final two layers change."""
    state = model.state_dict()
    for key in list(state)[-2:]:
        state[key] = state[key] + level
    model.load_state_dict(state)


def build_pua_chain(service, scale: float, snapshots: int) -> str:
    arch = arch_ref("mobilenetv2", scale)
    model = create_model("mobilenetv2", num_classes=NUM_CLASSES, scale=scale, seed=3)
    tip = service.save_model(ModelSaveInfo(model, arch))
    for level in range(1, snapshots):
        perturb_classifier(model, 0.01 * level)
        tip = service.save_model(ModelSaveInfo(model, arch, base_model_id=tip))
    return tip


def cluster_stores(workdir: Path, shards: int, args) -> SharedStores:
    return SharedStores.cluster_at(
        workdir,
        shards=shards,
        replicas=1 if shards == 1 else 2,
        network=CELLULAR_LTE,
        workers=args.workers,
        pipeline_depth=args.pipeline_depth,
        chunk_cache_bytes=args.chunk_cache_mb * 1024 * 1024,
    )


def measure_recover(service, stores: SharedStores, tip: str) -> dict:
    """Tip recovery with cold caches; returns the cluster link accounting."""
    files = stores.files
    if files.chunk_cache is not None:
        files.chunk_cache.clear()
    files.reset_accounting()
    recovered = service.recover_model(tip, verify=False)
    accounting = files.cluster_accounting()
    elapsed = accounting["simulated_seconds"]
    received = accounting["bytes_received"]
    return {
        "state": recovered.model.state_dict(),
        "simulated_seconds": round(elapsed, 6),
        "bytes_received": received,
        "throughput_mb_s": round(received / elapsed / 1e6, 3) if elapsed else None,
    }


def bench_scaling(workdir: Path, args) -> dict:
    results: dict = {}
    for shards in args.shards:
        stores = cluster_stores(workdir / f"shards-{shards}", shards, args)
        service = make_service("param_update", stores)
        tip = build_pua_chain(service, args.scale, args.snapshots)
        outcome = measure_recover(service, stores, tip)
        outcome.pop("state")
        results[str(shards)] = outcome
        print(
            f"  {shards} shard(s): {outcome['bytes_received']:,} bytes in "
            f"{outcome['simulated_seconds']:.3f}s link time -> "
            f"{outcome['throughput_mb_s']} MB/s"
        )
    return results


def bench_replica_down(workdir: Path, args) -> dict:
    """Healthy vs one-member-down recovery must agree bitwise."""
    stores = cluster_stores(workdir / "replica-down", 4, args)
    service = make_service("param_update", stores)
    tip = build_pua_chain(service, args.scale, args.snapshots)

    healthy = measure_recover(service, stores, tip)
    victim_name = sorted(stores.files.members)[0]
    stores.files.members[victim_name].faults = FaultInjector(seed=11, error_rate=1.0)
    degraded = measure_recover(service, stores, tip)

    healthy_state = healthy.pop("state")
    degraded_state = degraded.pop("state")
    identical = set(healthy_state) == set(degraded_state) and all(
        np.array_equal(healthy_state[key], degraded_state[key])
        for key in healthy_state
    )
    failovers = stores.files.cluster_stats["failover_reads"]
    print(
        f"  one member down: {failovers} failover reads, "
        f"bitwise identical: {identical}"
    )
    return {
        "victim": victim_name,
        "healthy": healthy,
        "degraded": degraded,
        "failover_reads": failovers,
        "read_repairs": stores.files.cluster_stats["read_repairs"],
        "bitwise_identical": bool(identical),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=5,
                        help="PUA chain length per cluster size")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="model width scale (1.0 = paper architectures)")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        help="cluster sizes to measure (1 = unreplicated baseline)")
    parser.add_argument("--workers", type=int, default=8,
                        help="concurrent chunk transfers per batch")
    parser.add_argument("--pipeline-depth", type=int, default=8,
                        help="in-flight requests per latency window")
    parser.add_argument("--chunk-cache-mb", type=int, default=128,
                        help="hot-chunk cache budget on the sharded store")
    parser.add_argument("--no-check", action="store_true",
                        help="record results without enforcing acceptance bars")
    args = parser.parse_args()
    if 1 not in args.shards or 4 not in args.shards:
        args.shards = sorted(set(args.shards) | {1, 4})

    results: dict = {
        "generated_by": "scripts/bench_cluster.py",
        "config": {
            "snapshots": args.snapshots,
            "scale": args.scale,
            "shards": args.shards,
            "replicas": "1 for the 1-shard baseline, 2 otherwise",
            "link": "cellular LTE per member",
        },
    }

    workdir = Path(tempfile.mkdtemp(prefix="bench-cluster-"))
    try:
        print("== PUA recover throughput vs shard count ==")
        results["scaling"] = bench_scaling(workdir, args)
        print("== replica-down recovery ==")
        results["replica_down"] = bench_replica_down(workdir, args)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    base = results["scaling"]["1"]["throughput_mb_s"]
    four = results["scaling"]["4"]["throughput_mb_s"]
    scaling = round(four / base, 3) if base and four else None
    results["acceptance"] = {
        "throughput_scaling_4x_over_1x": scaling,
        "meets_2x": bool(scaling and scaling >= 2.0),
        "replica_down_bitwise_identical": results["replica_down"]["bitwise_identical"],
    }
    print(f"4-shard over 1-shard recover throughput: x{scaling}")

    from _bench_results import write_results

    write_results("BENCH_cluster.json", results)

    failed = []
    if not args.no_check:
        if not results["acceptance"]["meets_2x"]:
            failed.append(
                f"4-shard recover throughput is only x{scaling} the "
                "1-shard baseline (bar: 2x)"
            )
        if not results["acceptance"]["replica_down_bitwise_identical"]:
            failed.append("replica-down recovery was not bitwise identical")
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
