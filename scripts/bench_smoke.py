#!/usr/bin/env python
"""CI smoke benchmark for the chunked save/recover pipeline.

Runs the tier-1 test suite, a ~5 second save/recover micro-benchmark on
MobileNetV2, and a chunked-vs-monolithic comparison over a ResNet-152
chain of full snapshots with partial updates (the dedup sweet spot: every
snapshot shares all but the classifier with its predecessor).

Writes ``BENCH_pipeline.json`` into ``benchmarks/results/`` (canonical;
copied to the repo root).  Exit status is non-zero if the tier-1 suite
fails or (unless ``--no-check``) the chunked pipeline misses its
acceptance bars: >= 30% fewer stored bytes and a better median
time-to-save than the monolithic path on the partial-update chain, and
the segment chunk layout saving >= 3x faster than file-per-chunk at
equal durability while recovering within 1.05x.

Usage::

    python scripts/bench_smoke.py [--skip-tests] [--budget-seconds 5]
                                  [--scale 0.25] [--snapshots 5]
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core import BaselineSaveService, ModelSaveInfo  # noqa: E402
from repro.core.save_info import ArchitectureRef  # noqa: E402
from repro.docstore import DocumentStore  # noqa: E402
from repro.filestore import FileStore  # noqa: E402
from repro.nn.models import MODEL_REGISTRY, create_model  # noqa: E402

NUM_CLASSES = 100


def arch_ref(name: str, scale: float) -> ArchitectureRef:
    spec = MODEL_REGISTRY[name]
    return ArchitectureRef.from_factory(
        spec.factory.__module__,
        spec.factory.__name__,
        {"num_classes": NUM_CLASSES, "scale": scale},
    )


def perturb_classifier(model, level: float) -> None:
    """In-place partial update: only the final two layers change."""
    state = model.state_dict()
    for key in list(state)[-2:]:
        state[key] = state[key] + level
    model.load_state_dict(state)


def run_tier1_tests() -> dict:
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin", "HOME": str(Path.home())},
        capture_output=True,
        text=True,
    )
    seconds = time.perf_counter() - started
    tail = "\n".join(proc.stdout.splitlines()[-3:])
    print(tail)
    return {"ran": True, "passed": proc.returncode == 0, "seconds": round(seconds, 1)}


def micro_benchmark(workdir: Path, budget_seconds: float, scale: float) -> dict:
    """Repeated chunked save/recover of MobileNetV2 within a time budget."""
    service = BaselineSaveService(
        DocumentStore(), FileStore(workdir / "micro"), chunked=True
    )
    arch = arch_ref("mobilenetv2", scale)
    model = create_model("mobilenetv2", num_classes=NUM_CLASSES, scale=scale, seed=1)

    save_ms, recover_ms, model_ids = [], [], []
    deadline = time.perf_counter() + budget_seconds
    level = 0.0
    while time.perf_counter() < deadline or len(save_ms) < 3:
        started = time.perf_counter()
        model_id = service.save_model(ModelSaveInfo(model, arch))
        save_ms.append((time.perf_counter() - started) * 1e3)
        model_ids.append(model_id)

        started = time.perf_counter()
        service.recover_model(model_id, verify=False)
        recover_ms.append((time.perf_counter() - started) * 1e3)

        level += 0.01
        perturb_classifier(model, level)

    logical = sum(service.files.size(d["parameters_file"])
                  for d in service.documents.collection("models").find())
    physical = service.files.total_bytes()
    return {
        "model": "mobilenetv2",
        "iterations": len(save_ms),
        "save_ms_median": round(statistics.median(save_ms), 2),
        "recover_ms_median": round(statistics.median(recover_ms), 2),
        "logical_bytes": logical,
        "physical_bytes": physical,
        "dedup_ratio": round(1 - physical / logical, 4),
    }


def chain_benchmark(workdir: Path, scale: float, snapshots: int) -> dict:
    """ResNet-152 chain of full BA snapshots with partial updates."""
    arch = arch_ref("resnet152", scale)
    variants = {}
    for label, chunked in (("monolithic", False), ("chunked", True)):
        service = BaselineSaveService(
            DocumentStore(), FileStore(workdir / label), chunked=chunked
        )
        model = create_model("resnet152", num_classes=NUM_CLASSES, scale=scale, seed=2)
        tts_ms, ids = [], []
        for level in range(snapshots):
            if level:
                perturb_classifier(model, 0.01 * level)
            started = time.perf_counter()
            ids.append(service.save_model(ModelSaveInfo(model, arch)))
            tts_ms.append((time.perf_counter() - started) * 1e3)

        started = time.perf_counter()
        recovered = service.recover_model(ids[-1], verify=True)
        recover_ms = (time.perf_counter() - started) * 1e3
        assert recovered.verified is True

        variants[label] = {
            "stored_bytes": service.files.total_bytes(),
            "tts_ms_median": round(statistics.median(tts_ms), 2),
            "recover_ms": round(recover_ms, 2),
        }

    mono, chunk = variants["monolithic"], variants["chunked"]
    reduction = 1 - chunk["stored_bytes"] / mono["stored_bytes"]
    return {
        "model": "resnet152",
        "snapshots": snapshots,
        "relation": "partially_updated",
        **variants,
        "stored_bytes_reduction": round(reduction, 4),
        "tts_speedup": round(mono["tts_ms_median"] / chunk["tts_ms_median"], 3),
        "meets_30pct_reduction": reduction >= 0.30,
        "tts_improved": chunk["tts_ms_median"] < mono["tts_ms_median"],
    }


def _counter_total(snapshot: dict, family: str) -> float:
    """Sum every series of one counter family in a registry snapshot."""
    return sum(s["value"] for s in snapshot.get(family, {}).get("series", []))


def segments_vs_files_benchmark(
    workdir: Path, scale: float, chunks: int = 800, chunk_kb: int = 8
) -> dict:
    """Segment layout vs file-per-chunk at equal durability (fsync-before-ack).

    Both variants run with ``durability="group"``: no save is acknowledged
    before its chunk bytes are fsynced.  File-per-chunk pays one fsync per
    created file at the batch barrier; the segment layout appends every
    chunk to one open segment and pays a single fsync for the whole batch.
    The syscall proxy (files created + fsyncs) comes from the obs counters.
    """
    import numpy as np

    from repro.core.hashing import state_dict_hashes

    rng = np.random.default_rng(7)
    state = {
        f"layer_{index:04d}": rng.standard_normal(
            chunk_kb * 1024 // 8
        )
        for index in range(chunks)
    }
    hashes = state_dict_hashes(state)
    payload_bytes = sum(a.nbytes for a in state.values())

    variants = {}
    for layout in ("files", "segments"):
        store = FileStore(
            workdir / f"sv-{layout}", layout=layout, durability="group"
        )
        before = obs.registry().snapshot()
        started = time.perf_counter()
        file_id = store.save_state_chunks(state, hashes)
        save_seconds = time.perf_counter() - started
        after = obs.registry().snapshot()

        recover_ms = []
        for _ in range(5):
            started = time.perf_counter()
            restored = store.recover_state_chunks(file_id)
            recover_ms.append((time.perf_counter() - started) * 1e3)
        assert len(restored) == chunks

        variants[layout] = {
            "save_seconds": round(save_seconds, 4),
            "save_mb_per_s": round(payload_bytes / save_seconds / 1e6, 2),
            "recover_ms_median": round(statistics.median(recover_ms), 2),
            "files_created": int(
                _counter_total(after, "mmlib_chunk_files_created_total")
                - _counter_total(before, "mmlib_chunk_files_created_total")
            ),
            "fsyncs": int(
                _counter_total(after, "mmlib_chunk_fsyncs_total")
                - _counter_total(before, "mmlib_chunk_fsyncs_total")
            ),
            "fsync_batches": int(
                _counter_total(after, "mmlib_segment_fsync_batches_total")
                - _counter_total(before, "mmlib_segment_fsync_batches_total")
            ),
        }

    files, segments = variants["files"], variants["segments"]
    speedup = files["save_seconds"] / segments["save_seconds"]
    recover_ratio = (
        segments["recover_ms_median"] / files["recover_ms_median"]
    )
    return {
        "chunks": chunks,
        "chunk_kb": chunk_kb,
        "payload_bytes": payload_bytes,
        "durability": "group",
        **variants,
        "save_speedup": round(speedup, 3),
        "recover_ratio": round(recover_ratio, 3),
        "meets_3x_save": speedup >= 3.0,
        "recover_within_1_05": recover_ratio <= 1.05,
    }


def obs_overhead_benchmark(
    workdir: Path, scale: float, iterations: int = 12, warmup: int = 2
) -> dict:
    """The same save/recover loop with the observability plane on vs off.

    Fresh services are constructed inside each mode — instrument handles
    are cached at construction time, so flipping the default registry
    only affects components built afterwards.  The first ``warmup``
    iterations of each mode prime caches and are excluded from medians.
    """
    arch = arch_ref("mobilenetv2", scale)

    def build(label: str, enabled: bool):
        # Instrument handles are cached at construction time, so a service
        # built while the plane is disabled keeps its null instruments even
        # after the defaults are switched back on.
        obs.set_enabled(enabled)
        try:
            service = BaselineSaveService(
                DocumentStore(), FileStore(workdir / f"obs-{label}"), chunked=True
            )
            service.files.chunks  # the lazy chunk store caches instruments too
            model = create_model(
                "mobilenetv2", num_classes=NUM_CLASSES, scale=scale, seed=3
            )
        finally:
            obs.set_enabled(True)
        return service, model

    modes = {
        "off": {"rig": build("off", False), "save_ms": [], "recover_ms": []},
        "on": {"rig": build("on", True), "save_ms": [], "recover_ms": []},
    }
    # Interleave the two modes within each iteration so machine drift
    # (caches, thermal, background load) hits both equally.
    for level in range(iterations):
        for mode in modes.values():
            service, model = mode["rig"]
            if level:
                perturb_classifier(model, 0.01 * level)
            started = time.perf_counter()
            model_id = service.save_model(ModelSaveInfo(model, arch))
            mode["save_ms"].append((time.perf_counter() - started) * 1e3)
            started = time.perf_counter()
            service.recover_model(model_id, verify=False)
            mode["recover_ms"].append((time.perf_counter() - started) * 1e3)

    def medians(mode: dict) -> dict:
        return {
            "save_ms_median": round(statistics.median(mode["save_ms"][warmup:]), 2),
            "recover_ms_median": round(
                statistics.median(mode["recover_ms"][warmup:]), 2
            ),
        }

    disabled = medians(modes["off"])
    enabled = medians(modes["on"])
    save_overhead = enabled["save_ms_median"] / disabled["save_ms_median"] - 1
    recover_overhead = (
        enabled["recover_ms_median"] / disabled["recover_ms_median"] - 1
    )
    return {
        "iterations": iterations,
        "enabled": enabled,
        "disabled": disabled,
        "save_overhead_pct": round(save_overhead * 100, 2),
        "recover_overhead_pct": round(recover_overhead * 100, 2),
        "within_5pct": save_overhead <= 0.05 and recover_overhead <= 0.05,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the tier-1 pytest run")
    parser.add_argument("--budget-seconds", type=float, default=5.0,
                        help="time budget for the micro-benchmark")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="model width scale (1.0 = paper architectures)")
    parser.add_argument("--snapshots", type=int, default=5,
                        help="chain length for the resnet152 comparison")
    parser.add_argument("--no-check", action="store_true",
                        help="record results without enforcing acceptance bars")
    args = parser.parse_args()

    results = {
        "generated_by": "scripts/bench_smoke.py",
        "config": {
            "scale": args.scale,
            "num_classes": NUM_CLASSES,
            "budget_seconds": args.budget_seconds,
            "snapshots": args.snapshots,
        },
    }

    if args.skip_tests:
        results["tier1_tests"] = {"ran": False}
    else:
        print("== tier-1 tests ==")
        results["tier1_tests"] = run_tier1_tests()

    workdir = Path(tempfile.mkdtemp(prefix="bench-smoke-"))
    try:
        print("== micro-benchmark: mobilenetv2 save/recover ==")
        results["micro_mobilenetv2"] = micro_benchmark(
            workdir, args.budget_seconds, args.scale
        )
        micro = results["micro_mobilenetv2"]
        print(f"save {micro['save_ms_median']} ms  recover {micro['recover_ms_median']} ms  "
              f"dedup {micro['dedup_ratio']:.1%} over {micro['iterations']} snapshots")

        print("== resnet152 chain: chunked vs monolithic ==")
        results["resnet152_chain"] = chain_benchmark(workdir, args.scale, args.snapshots)
        chain = results["resnet152_chain"]
        print(f"stored bytes: chunked {chain['chunked']['stored_bytes']:,} vs "
              f"monolithic {chain['monolithic']['stored_bytes']:,} "
              f"(-{chain['stored_bytes_reduction']:.1%})")
        print(f"median TTS: chunked {chain['chunked']['tts_ms_median']} ms vs "
              f"monolithic {chain['monolithic']['tts_ms_median']} ms "
              f"(x{chain['tts_speedup']})")

        print("== chunk layout: segments vs file-per-chunk ==")
        results["segments_vs_files"] = segments_vs_files_benchmark(
            workdir, args.scale
        )
        layouts = results["segments_vs_files"]
        print(f"save: segments {layouts['segments']['save_mb_per_s']} MB/s vs "
              f"files {layouts['files']['save_mb_per_s']} MB/s "
              f"(x{layouts['save_speedup']}); "
              f"fsyncs {layouts['segments']['fsyncs']} vs "
              f"{layouts['files']['fsyncs']}, files created "
              f"{layouts['segments']['files_created']} vs "
              f"{layouts['files']['files_created']}")
        print(f"recover: segments {layouts['segments']['recover_ms_median']} ms "
              f"vs files {layouts['files']['recover_ms_median']} ms "
              f"(x{layouts['recover_ratio']})")

        print("== obs overhead: instrumented vs disabled ==")
        results["obs_overhead"] = obs_overhead_benchmark(workdir, args.scale)
        overhead = results["obs_overhead"]
        print(f"save {overhead['save_overhead_pct']:+.1f}%  "
              f"recover {overhead['recover_overhead_pct']:+.1f}%  "
              f"(within 5%: {overhead['within_5pct']})")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    from _bench_results import write_results

    write_results("BENCH_pipeline.json", results)

    failed = []
    if results["tier1_tests"].get("ran") and not results["tier1_tests"]["passed"]:
        failed.append("tier-1 tests failed")
    if not args.no_check:
        if not chain["meets_30pct_reduction"]:
            failed.append("chunked store saved < 30% bytes on the partial-update chain")
        if not chain["tts_improved"]:
            failed.append("chunked median TTS did not improve")
        if not layouts["meets_3x_save"]:
            failed.append(
                "segment layout saved < 3x faster than file-per-chunk at "
                "equal durability"
            )
        if not layouts["recover_within_1_05"]:
            failed.append("segment layout recover exceeded 1.05x file-per-chunk")
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
