#!/usr/bin/env python
"""Recovery-plane benchmark: serial vs. pipelined transfer accounting.

Builds a multi-snapshot chain per approach (BA full snapshots, PUA
parameter-update chain, MPA provenance chain with training replay) in a
simulated network deployment, then measures tip-model recovery twice:

* **serial** — the pre-parallel-plane configuration: one chunk per
  round-trip, no hot-chunk cache, no prefetch;
* **pipelined** — concurrent chunk fetches with ``pipeline_depth``
  requests per latency window, a shared hot-chunk cache, and base-chain
  prefetch.

Costs come from :class:`SimulatedNetworkFileStore` with ``sleep=False``:
``simulated_seconds`` is the modelled link time (latency windows plus
shared-bandwidth byte time), and ``round_trips``/``round_trips_saved``
report how many latency payments pipelining avoided.  Both an InfiniBand
(paper §4.1) and an LTE link (the motivating fleet uplink) are measured.

Two storage-efficiency sweeps ride along:

* **chain depth** — PUA tip recovery at depths 1/4/8/16 with and without
  :class:`ChainCompactor` at K=4, plus a crash injected mid-compaction
  (fsck must finish the rewrite and recovery must still verify);
* **dedup** — derived-model saves under content-defined chunking and the
  zlib codec, reporting the store's dedup and compression ratios.

Writes ``BENCH_recovery.json`` into ``benchmarks/results/`` (canonical;
copied to the repo root).  Exit status is non-zero unless pipelined
recovery is >= 2x faster than serial on the PUA chain over LTE, compacted
depth-16 recovery is <= 2x depth-1, and the dedup ratio is >= 1.5
(``--no-check`` records without enforcing).

Usage::

    python scripts/bench_recovery.py [--snapshots 6] [--scale 0.25]
                                     [--workers 8] [--pipeline-depth 8]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core import ModelSaveInfo  # noqa: E402
from repro.core.save_info import ArchitectureRef  # noqa: E402
from repro.distsim import SharedStores, make_service  # noqa: E402
from repro.filestore import CELLULAR_LTE, INFINIBAND_100G  # noqa: E402
from repro.nn.models import MODEL_REGISTRY, create_model  # noqa: E402
from repro.workloads import ChainConfig, PARTIALLY_UPDATED, build_chain  # noqa: E402

NUM_CLASSES = 100
SCHEMA_VERSION = 2
LINKS = {"infiniband": INFINIBAND_100G, "lte": CELLULAR_LTE}
COMPACTION_DEPTHS = (1, 4, 8, 16)
COMPACTION_K = 4


def arch_ref(name: str, scale: float) -> ArchitectureRef:
    spec = MODEL_REGISTRY[name]
    return ArchitectureRef.from_factory(
        spec.factory.__module__,
        spec.factory.__name__,
        {"num_classes": NUM_CLASSES, "scale": scale},
    )


def perturb_classifier(model, level: float) -> None:
    """In-place partial update: only the final two layers change."""
    state = model.state_dict()
    for key in list(state)[-2:]:
        state[key] = state[key] + level
    model.load_state_dict(state)


def make_stores(workdir: Path, mode: str, args) -> SharedStores:
    if mode == "serial":
        return SharedStores.at(
            workdir, network=CELLULAR_LTE, workers=0, pipeline_depth=1,
            chunk_cache_bytes=0,
        )
    return SharedStores.at(
        workdir, network=CELLULAR_LTE, workers=args.workers,
        pipeline_depth=args.pipeline_depth,
        chunk_cache_bytes=args.chunk_cache_mb * 1024 * 1024,
    )


def build_ba_chain(service, scale: float, snapshots: int) -> str:
    """Independent full snapshots; returns the tip model id."""
    arch = arch_ref("mobilenetv2", scale)
    model = create_model("mobilenetv2", num_classes=NUM_CLASSES, scale=scale, seed=3)
    tip = None
    for level in range(snapshots):
        if level:
            perturb_classifier(model, 0.01 * level)
        tip = service.save_model(ModelSaveInfo(model, arch))
    return tip


def build_pua_chain(service, scale: float, snapshots: int) -> str:
    """One full snapshot plus a chain of parameter updates; returns the tip."""
    arch = arch_ref("mobilenetv2", scale)
    model = create_model("mobilenetv2", num_classes=NUM_CLASSES, scale=scale, seed=3)
    tip = service.save_model(ModelSaveInfo(model, arch))
    for level in range(1, snapshots):
        perturb_classifier(model, 0.01 * level)
        tip = service.save_model(
            ModelSaveInfo(model, arch, base_model_id=tip)
        )
    return tip


def build_mpa_chain(service, chain) -> str:
    """Provenance chain from the pre-built workloads chain; returns the tip."""
    ids: list[str] = []
    for step in chain.steps:
        if not step.use_case.startswith(("U_1", "U_3-1")):
            continue  # one linear branch is enough for a recovery chain
        model = chain.build_model(step.use_case)
        if step.run is None:
            save_info = ModelSaveInfo(
                model, chain.config.architecture_ref(), use_case=step.use_case
            )
        else:
            save_info = step.run.to_provenance_info(
                ids[-1], trained_model=model, use_case=step.use_case
            )
        ids.append(service.save_model(save_info))
    return ids[-1]


def measure(service, store, network, tip: str) -> dict:
    """Recover the tip model over ``network`` with cold caches."""
    store.network = network
    if store.chunk_cache is not None:
        store.chunk_cache.clear()
    prefetcher = service.prefetcher
    if prefetcher is not None:
        prefetcher.drain()
    store.reset_accounting()
    started = time.perf_counter()
    service.recover_model(tip, verify=False)
    if prefetcher is not None:
        prefetcher.drain()  # in-flight read-ahead still charges the link
    wall_ms = (time.perf_counter() - started) * 1e3
    return {
        "simulated_seconds": round(store.simulated_seconds, 6),
        "round_trips": store.round_trips,
        "round_trips_saved": store.round_trips_saved,
        "bytes_received": store.bytes_received,
        "wall_ms": round(wall_ms, 2),
    }


def bench_approach(name: str, workdir: Path, args, chain=None) -> dict:
    scenario: dict = {}
    for mode in ("serial", "pipelined"):
        stores = make_stores(workdir / f"{name}-{mode}", mode, args)
        prefetch_workers = args.prefetch_workers if mode == "pipelined" else 0
        approach = {"BA": "baseline", "PUA": "param_update", "MPA": "provenance"}[name]
        service = make_service(
            approach, stores, prefetch_workers=prefetch_workers
        )
        if name == "BA":
            tip = build_ba_chain(service, args.scale, args.snapshots)
        elif name == "PUA":
            tip = build_pua_chain(service, args.scale, args.snapshots)
        else:
            tip = build_mpa_chain(service, chain)
        scenario[mode] = {
            link: measure(service, stores.files, network, tip)
            for link, network in LINKS.items()
        }
        if service.prefetcher is not None:
            service.prefetcher.close()
    for link in LINKS:
        serial_s = scenario["serial"][link]["simulated_seconds"]
        piped_s = scenario["pipelined"][link]["simulated_seconds"]
        scenario[f"speedup_{link}"] = round(serial_s / piped_s, 3) if piped_s else None
    return scenario


def bench_chain_depth(workdir: Path, args) -> dict:
    """PUA tip recovery versus chain depth, before and after bounded
    compaction at K=``COMPACTION_K`` rewrote the chain in place."""
    from repro.core import ModelManager

    scenario: dict = {"max_depth": COMPACTION_K, "depths": {}}
    for depth in COMPACTION_DEPTHS:
        stores = make_stores(workdir / f"compaction-{depth}", "pipelined", args)
        service = make_service(
            "param_update", stores, prefetch_workers=args.prefetch_workers
        )
        tip = build_pua_chain(service, args.scale, depth + 1)
        entry: dict = {
            "without_compaction": measure(service, stores.files, CELLULAR_LTE, tip)
        }
        report = ModelManager(service).compact(max_depth=COMPACTION_K)
        entry["materialized"] = len(report["materialized"])
        entry["released_bytes"] = report["released_bytes"]
        entry["with_compaction"] = measure(service, stores.files, CELLULAR_LTE, tip)
        scenario["depths"][str(depth)] = entry
        if service.prefetcher is not None:
            service.prefetcher.close()
    base = scenario["depths"]["1"]["without_compaction"]["simulated_seconds"]
    deepest = scenario["depths"][str(COMPACTION_DEPTHS[-1])]
    if base:
        scenario["ttr_ratio_uncompacted"] = round(
            deepest["without_compaction"]["simulated_seconds"] / base, 3
        )
        scenario["ttr_ratio_compacted"] = round(
            deepest["with_compaction"]["simulated_seconds"] / base, 3
        )
    return scenario


def bench_crash_mid_compaction(workdir: Path, args) -> dict:
    """Kill the compactor after the commit point but before cleanup; fsck
    must finish the rewrite and verified recovery must still succeed."""
    from repro.core import ModelManager
    from repro.core.compaction import ChainCompactor
    from repro.faults import CrashPoint, FaultInjector

    stores = make_stores(workdir / "compaction-crash", "serial", args)
    service = make_service("param_update", stores, prefetch_workers=0)
    tip = build_pua_chain(service, args.scale, COMPACTION_K + 1)
    faults = FaultInjector(seed=0)
    compactor = ChainCompactor(service, max_depth=COMPACTION_K)
    compactor.fault_hook = faults.fail_point
    faults.arm_crash(1, op="compact.cleanup")
    crashed = False
    try:
        compactor.run()
    except CrashPoint:
        crashed = True
    report = ModelManager(service).fsck()
    after = service.recover_model(tip, verify=True)  # raises on any mismatch
    return {
        "crashed": crashed,
        "journal_resolved": compactor.journal.pending() == [],
        "unrepaired_issues": len(report.unrepaired),
        "recovery_depth": after.recovery_depth,
        "recovery_verified": True,
    }


def bench_dedup(workdir: Path, args) -> dict:
    """Derived-model family under CDC + zlib: full fine-tuned classifier
    heads plus a point edit in the largest backbone layer, so whole-layer
    dedup, sub-layer (CDC) dedup, and at-rest compression all show up."""
    stores = SharedStores.at(
        workdir / "dedup", network=CELLULAR_LTE, workers=args.workers,
        pipeline_depth=args.pipeline_depth,
        chunk_cache_bytes=args.chunk_cache_mb * 1024 * 1024,
        codec="zlib", cdc=True,
    )
    service = make_service("baseline", stores, prefetch_workers=0)
    arch = arch_ref("mobilenetv2", args.scale)
    model = create_model(
        "mobilenetv2", num_classes=NUM_CLASSES, scale=args.scale, seed=3
    )
    service.save_model(ModelSaveInfo(model, arch))
    derived = 4
    for level in range(1, derived + 1):
        perturb_classifier(model, 0.01 * level)
        state = model.state_dict()
        big = max(state, key=lambda key: state[key].size)
        state[big].reshape(-1)[level] += 0.5  # point edit: CDC territory
        model.load_state_dict(state)
        service.save_model(ModelSaveInfo(model, arch))
    stats = stores.files.chunks.dedup_stats()
    return {"models_saved": derived + 1, "approach": "baseline", **stats}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshots", type=int, default=6,
                        help="chain length for the BA/PUA scenarios")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="model width scale for the BA/PUA scenarios")
    parser.add_argument("--workers", type=int, default=8,
                        help="concurrent chunk transfers in pipelined mode")
    parser.add_argument("--pipeline-depth", type=int, default=8,
                        help="in-flight requests per latency window")
    parser.add_argument("--chunk-cache-mb", type=int, default=128,
                        help="hot-chunk cache size in pipelined mode")
    parser.add_argument("--prefetch-workers", type=int, default=2,
                        help="base-chain read-ahead workers in pipelined mode")
    parser.add_argument("--no-check", action="store_true",
                        help="record results without enforcing the 2x bar")
    args = parser.parse_args()

    results = {
        "generated_by": "scripts/bench_recovery.py",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "snapshots": args.snapshots,
            "scale": args.scale,
            "num_classes": NUM_CLASSES,
            "workers": args.workers,
            "pipeline_depth": args.pipeline_depth,
            "chunk_cache_mb": args.chunk_cache_mb,
            "prefetch_workers": args.prefetch_workers,
            "links": {
                name: {
                    "bandwidth_bytes_per_s": model.bandwidth_bytes_per_s,
                    "latency_s": model.latency_s,
                }
                for name, model in LINKS.items()
            },
        },
        "scenarios": {},
    }

    workdir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        mpa_chain = build_chain(
            workdir / "chain-cache",
            ChainConfig(
                architecture="mobilenetv2", relation=PARTIALLY_UPDATED,
                scale=0.125, num_classes=10, iterations=2, u2_epochs=1,
                u3_epochs=1, batches_per_epoch=1, dataset_scale=1 / 2048,
                image_size=16,
            ),
        )
        for name in ("BA", "PUA", "MPA"):
            print(f"== {name}: serial vs pipelined recovery ==")
            scenario = bench_approach(name, workdir, args, chain=mpa_chain)
            results["scenarios"][name] = scenario
            for link in LINKS:
                serial = scenario["serial"][link]
                piped = scenario["pipelined"][link]
                print(
                    f"  {link:10s} serial {serial['simulated_seconds']:.3f}s "
                    f"({serial['round_trips']} RTs) -> pipelined "
                    f"{piped['simulated_seconds']:.3f}s ({piped['round_trips']} RTs, "
                    f"{piped['round_trips_saved']} saved)  "
                    f"x{scenario[f'speedup_{link}']}"
                )

        print(f"== chain depth: TTR with/without compaction (K={COMPACTION_K}) ==")
        chain_depth = bench_chain_depth(workdir, args)
        chain_depth["crash_mid_compaction"] = bench_crash_mid_compaction(
            workdir, args
        )
        results["scenarios"]["chain_depth"] = chain_depth
        for depth in COMPACTION_DEPTHS:
            entry = chain_depth["depths"][str(depth)]
            print(
                f"  depth {depth:2d}: "
                f"{entry['without_compaction']['simulated_seconds']:.3f}s -> "
                f"{entry['with_compaction']['simulated_seconds']:.3f}s "
                f"compacted ({entry['materialized']} materialized)"
            )

        print("== dedup: derived-model family under CDC + zlib ==")
        dedup = bench_dedup(workdir, args)
        results["scenarios"]["dedup"] = dedup
        print(
            f"  {dedup['models_saved']} models: dedup x{dedup['dedup_ratio']}, "
            f"compression x{dedup['compression_ratio']}"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    pua_lte = results["scenarios"]["PUA"]["speedup_lte"]
    chain_depth = results["scenarios"]["chain_depth"]
    base_s = chain_depth["depths"]["1"]["without_compaction"]["simulated_seconds"]
    deep = chain_depth["depths"][str(COMPACTION_DEPTHS[-1])]
    deep_s = deep["with_compaction"]["simulated_seconds"]
    crash = chain_depth["crash_mid_compaction"]
    dedup_ratio = results["scenarios"]["dedup"]["dedup_ratio"]
    results["acceptance"] = {
        "pua_lte_speedup": pua_lte,
        "meets_2x": bool(pua_lte and pua_lte >= 2.0),
        "compacted_depth16_vs_depth1": round(deep_s / base_s, 3) if base_s else None,
        "compaction_bounds_ttr": bool(base_s and deep_s <= 2.0 * base_s),
        "crash_recovery_bitwise": bool(
            crash["crashed"] and crash["recovery_verified"]
            and crash["journal_resolved"] and crash["unrepaired_issues"] == 0
        ),
        "dedup_ratio": dedup_ratio,
        "dedup_meets_1_5x": bool(dedup_ratio and dedup_ratio >= 1.5),
    }

    from _bench_results import write_results

    write_results("BENCH_recovery.json", results)

    gates = (
        "meets_2x", "compaction_bounds_ttr",
        "crash_recovery_bitwise", "dedup_meets_1_5x",
    )
    failed = [gate for gate in gates if not results["acceptance"][gate]]
    if not args.no_check and failed:
        print(
            f"FAIL: acceptance gates not met: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
