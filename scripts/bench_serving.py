"""Serving benchmark: heavy-tailed multi-tenant traffic through the gateway.

Drives a clustered deployment through :class:`repro.gateway.GatewayServer`
with two tenants:

* ``acme`` — the well-behaved tenant: steady closed-rate traffic.
* ``burst`` — the heavy-tailed tenant: a diurnal sine curve modulating
  its base rate, periodic 3× bursts, and Zipf hot-key skew on recovers.

Phases: (1) seed each tenant's catalog with a delta chain, (2) measure
each tenant's *isolated* latency baseline, (3) run both tenants mixed —
the fairness window, (4) push the bursty tenant far past its quota so
load shedding engages, then (5) verify every acked save recovers
bitwise-identically and the deployment fscks clean.

Gates (``--no-check`` skips enforcement, never measurement):

* **zero lost acked writes** — every save the gateway acked recovers
  with a bitwise-identical state digest after the run, and fsck reports
  nothing unrepaired;
* **typed shedding** — overload produces rejections, every rejection is
  retryable, and every issued request gets an answer (no hung sockets,
  no silent drops);
* **tenant isolation** — the mixed-phase p99 of the well-behaved tenant
  stays within 2× its isolated baseline (plus a small absolute floor to
  absorb scheduler noise at sub-millisecond latencies).

Results land in ``BENCH_serving.json`` with an obs snapshot attached.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import math
import random
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_results import write_results  # noqa: E402

from repro.distsim.environment import SharedStores  # noqa: E402
from repro.gateway import (  # noqa: E402
    AsyncGatewayClient,
    GatewayRequestError,
    GatewayRetryableError,
    GatewayServer,
    IdleMaintenance,
    TenantQuota,
    TenantRegistry,
)
from repro.nn import serialization  # noqa: E402
from repro.workloads.serving import serving_mlp  # noqa: E402

FACTORY = "repro.workloads.serving:serving_mlp"

#: measurement-noise floor for the fairness gate: at sub-millisecond
#: medians a single GC pause can double a p99, which is not interference
FAIRNESS_FLOOR_S = 0.05


def state_digest(state: dict) -> str:
    """Order-independent bitwise digest of a state dict."""
    h = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        h.update(key.encode())
        h.update(str(array.dtype).encode())
        h.update(str(array.shape).encode())
        h.update(array.tobytes())
    return h.hexdigest()


def make_states(count: int, seed: int) -> list[dict]:
    """Deterministic pool of distinct model states to save."""
    base = serving_mlp(seed=seed).state_dict()
    states = []
    for index in range(count):
        state = {}
        for key, array in base.items():
            delta = np.float32(0.001 * (index + 1))
            state[key] = (array + delta).astype(array.dtype)
        states.append(state)
    return states


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.array(values), q))


class TenantStats:
    """Outcome accounting for one tenant in one phase."""

    def __init__(self):
        self.latencies: dict[str, list[float]] = {}
        self.errors: dict[str, int] = {}
        self.issued = 0
        self.answered = 0
        self.non_retryable = 0
        self.timeouts = 0

    def record_ok(self, op: str, seconds: float) -> None:
        self.answered += 1
        self.latencies.setdefault(op, []).append(seconds)

    def record_error(self, exc: Exception) -> None:
        self.answered += 1
        kind = getattr(exc, "kind", type(exc).__name__)
        self.errors[kind] = self.errors.get(kind, 0) + 1
        if kind == "timeout":
            self.timeouts += 1
        elif not getattr(exc, "retryable", False):
            self.non_retryable += 1

    def all_latencies(self) -> list[float]:
        return [s for per_op in self.latencies.values() for s in per_op]

    @property
    def ok_count(self) -> int:
        return len(self.all_latencies())

    @property
    def shed_count(self) -> int:
        return sum(
            count for kind, count in self.errors.items()
            if kind in ("overloaded", "quota")
        )

    def summary(self, duration_s: float) -> dict:
        latencies = self.all_latencies()
        out = {
            "issued": self.issued,
            "answered": self.answered,
            "ok": self.ok_count,
            "shed": self.shed_count,
            "timeouts": self.timeouts,
            "non_retryable_errors": self.non_retryable,
            "errors": dict(sorted(self.errors.items())),
            "qps_sustained": round(self.ok_count / duration_s, 2),
            "shed_rate": round(
                self.shed_count / max(self.issued, 1), 4
            ),
            "latency_s": {
                "p50": round(percentile(latencies, 50), 5),
                "p99": round(percentile(latencies, 99), 5),
                "mean": round(float(np.mean(latencies)) if latencies else 0.0, 5),
            },
            "latency_by_op": {
                op: {
                    "count": len(values),
                    "p50": round(percentile(values, 50), 5),
                    "p99": round(percentile(values, 99), 5),
                }
                for op, values in sorted(self.latencies.items())
            },
        }
        return out


def zipf_pick(rng: random.Random, items: list, skew: float = 1.1):
    """Heavy-tailed pick: item i with weight 1/(i+1)^skew (hot head)."""
    if not items:
        return None
    weights = [1.0 / (i + 1) ** skew for i in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


async def one_request(
    client: AsyncGatewayClient,
    op: str,
    stats: TenantStats,
    rng: random.Random,
    states: list[dict],
    acked: dict[str, str],
    model_ids: list[str],
    deadline_s: float,
    sem: asyncio.Semaphore,
) -> None:
    async with sem:
        started = time.perf_counter()
        try:
            if op == "save":
                index = rng.randrange(len(states))
                state = states[index]
                base = zipf_pick(rng, model_ids) if model_ids and rng.random() < 0.7 else None
                model_id = await client.save_model(
                    FACTORY,
                    state=state,
                    base=base,
                    use_case="serve",
                    deadline_s=deadline_s,
                )
                acked[model_id] = state_digest(state)
                model_ids.append(model_id)
            elif op == "recover":
                model_id = zipf_pick(rng, model_ids)
                if model_id is None:
                    return
                await client.recover_model(model_id, deadline_s=deadline_s)
            else:
                await client.find(use_case="serve", deadline_s=deadline_s)
            stats.record_ok(op, time.perf_counter() - started)
        except (GatewayRetryableError, GatewayRequestError) as exc:
            stats.record_error(exc)
        except Exception as exc:  # anything else counts against the gate
            stats.record_error(exc)
            stats.non_retryable += 1


async def drive_tenant(
    client: AsyncGatewayClient,
    stats: TenantStats,
    duration_s: float,
    base_rate: float,
    rng: random.Random,
    states: list[dict],
    acked: dict[str, str],
    model_ids: list[str],
    deadline_s: float,
    heavy_tailed: bool,
    max_concurrency: int = 64,
) -> None:
    """Open-loop arrivals at ``base_rate``, optionally heavy-tailed.

    Heavy-tailed mode modulates the rate with a diurnal sine over the
    phase duration and 3× bursts in a 0.5 s window every 3 s; the op mix
    is recover-heavy with Zipf skew over the tenant's hot models.
    """
    sem = asyncio.Semaphore(max_concurrency)
    tasks: list[asyncio.Task] = []
    start = time.perf_counter()
    while True:
        now = time.perf_counter() - start
        if now >= duration_s:
            break
        rate = base_rate
        if heavy_tailed:
            rate *= 1.0 + 0.8 * math.sin(2 * math.pi * now / duration_s)
            if now % 3.0 < 0.5:
                rate *= 3.0
        rate = max(rate, 0.5)
        await asyncio.sleep(rng.expovariate(rate))
        roll = rng.random()
        if roll < 0.2:
            op = "save"
        elif roll < 0.9:
            op = "recover"
        else:
            op = "find"
        stats.issued += 1
        tasks.append(
            asyncio.create_task(
                one_request(
                    client, op, stats, rng, states, acked, model_ids,
                    deadline_s, sem,
                )
            )
        )
    if tasks:
        await asyncio.gather(*tasks)


async def seed_tenant(
    client: AsyncGatewayClient,
    states: list[dict],
    acked: dict[str, str],
    model_ids: list[str],
    chain_length: int,
) -> None:
    """Give the tenant a delta chain to recover against."""
    base = None
    for index in range(chain_length):
        state = states[index % len(states)]
        model_id = await client.save_model(
            FACTORY, state=state, base=base, use_case="serve", deadline_s=30.0
        )
        acked[model_id] = state_digest(state)
        model_ids.append(model_id)
        base = model_id


async def verify_acked(
    client: AsyncGatewayClient, acked: dict[str, str]
) -> dict:
    """Recover every acked save through the gateway; compare digests."""
    lost: list[str] = []
    mismatched: list[str] = []
    for model_id, expected in acked.items():
        for attempt in range(6):
            try:
                recovered = await client.recover_model(model_id, deadline_s=30.0)
                if state_digest(recovered.state) != expected:
                    mismatched.append(model_id)
                break
            except GatewayRetryableError as exc:
                await asyncio.sleep(
                    max(getattr(exc, "retry_after_s", None) or 0.05, 0.05)
                )
        else:
            lost.append(model_id)
    return {
        "checked": len(acked),
        "lost": lost,
        "mismatched": mismatched,
    }


async def run_benchmark(args, server: GatewayServer, registry: TenantRegistry,
                        maintenance: IdleMaintenance) -> dict:
    rng = random.Random(args.seed)
    host, port = server.address
    states = {
        "acme": make_states(16, seed=args.seed),
        "burst": make_states(16, seed=args.seed + 1000),
    }
    acked: dict[str, dict[str, str]] = {"acme": {}, "burst": {}}
    model_ids: dict[str, list[str]] = {"acme": [], "burst": []}
    clients = {}
    for tenant in ("acme", "burst"):
        clients[tenant] = await AsyncGatewayClient(host, port, tenant).connect()

    results: dict = {"phases": {}}
    try:
        # -- phase 1: seed delta chains -----------------------------------
        for tenant in ("acme", "burst"):
            await seed_tenant(
                clients[tenant], states[tenant], acked[tenant],
                model_ids[tenant], chain_length=args.chain_length,
            )

        # -- phase 2: isolated baselines ----------------------------------
        isolated: dict[str, TenantStats] = {}
        for tenant, rate in (("acme", args.acme_rate), ("burst", args.burst_rate)):
            stats = TenantStats()
            await drive_tenant(
                clients[tenant], stats, args.baseline_seconds, rate,
                random.Random(args.seed + hash(tenant) % 1000),
                states[tenant], acked[tenant], model_ids[tenant],
                deadline_s=args.deadline_s, heavy_tailed=False,
            )
            isolated[tenant] = stats
        results["phases"]["isolated"] = {
            tenant: stats.summary(args.baseline_seconds)
            for tenant, stats in isolated.items()
        }

        # -- phase 3: mixed heavy-tailed traffic --------------------------
        mixed: dict[str, TenantStats] = {t: TenantStats() for t in ("acme", "burst")}
        await asyncio.gather(
            drive_tenant(
                clients["acme"], mixed["acme"], args.mixed_seconds,
                args.acme_rate, random.Random(args.seed + 1),
                states["acme"], acked["acme"], model_ids["acme"],
                deadline_s=args.deadline_s, heavy_tailed=False,
            ),
            drive_tenant(
                clients["burst"], mixed["burst"], args.mixed_seconds,
                args.burst_rate * 2.5, random.Random(args.seed + 2),
                states["burst"], acked["burst"], model_ids["burst"],
                deadline_s=args.deadline_s, heavy_tailed=True,
            ),
        )
        results["phases"]["mixed"] = {
            tenant: stats.summary(args.mixed_seconds)
            for tenant, stats in mixed.items()
        }

        # -- phase 4: overload (shedding must engage) ---------------------
        overload = TenantStats()
        await drive_tenant(
            clients["burst"], overload, args.overload_seconds,
            args.overload_rate, random.Random(args.seed + 3),
            states["burst"], acked["burst"], model_ids["burst"],
            deadline_s=args.deadline_s, heavy_tailed=True,
            max_concurrency=256,
        )
        results["phases"]["overload"] = {
            "burst": overload.summary(args.overload_seconds)
        }

        # give the idle loop a window to trigger chain compaction
        await asyncio.sleep(0.5)

        # -- phase 5: durability verification -----------------------------
        verification = {}
        for tenant in ("acme", "burst"):
            verification[tenant] = await verify_acked(
                clients[tenant], acked[tenant]
            )
        results["verification"] = verification
    finally:
        for client in clients.values():
            await client.close()

    all_stats = (
        list(isolated.values()) + list(mixed.values()) + [overload]
    )
    results["totals"] = {
        "issued": sum(s.issued for s in all_stats),
        "answered": sum(s.answered for s in all_stats),
        "ok": sum(s.ok_count for s in all_stats),
        "shed": sum(s.shed_count for s in all_stats),
        "timeouts": sum(s.timeouts for s in all_stats),
        "acked_saves": sum(len(a) for a in acked.values()),
    }
    results["maintenance"] = {
        "runs": maintenance.runs,
        "compacted_models": maintenance.compacted_models,
    }

    # -- acceptance ------------------------------------------------------
    acme_isolated_p99 = results["phases"]["isolated"]["acme"]["latency_s"]["p99"]
    acme_mixed_p99 = results["phases"]["mixed"]["acme"]["latency_s"]["p99"]
    fairness_bound = max(2 * acme_isolated_p99, acme_isolated_p99 + FAIRNESS_FLOOR_S)
    lost = sum(len(v["lost"]) + len(v["mismatched"]) for v in verification.values())
    sheds = results["totals"]["shed"]
    unanswered = results["totals"]["issued"] - results["totals"]["answered"]
    non_retryable_sheds = sum(s.non_retryable for s in all_stats)
    results["acceptance"] = {
        "zero_lost_acked_writes": {
            "acked": results["totals"]["acked_saves"],
            "lost_or_mismatched": lost,
            "ok": lost == 0,
        },
        "shedding_engages_typed": {
            "sheds": sheds,
            "unanswered": unanswered,
            "timeouts": results["totals"]["timeouts"],
            "non_retryable_errors": non_retryable_sheds,
            "ok": (
                sheds > 0
                and unanswered == 0
                and results["totals"]["timeouts"] == 0
                and non_retryable_sheds == 0
            ),
        },
        "tenant_isolation": {
            "acme_isolated_p99_s": acme_isolated_p99,
            "acme_mixed_p99_s": acme_mixed_p99,
            "bound_s": round(fairness_bound, 5),
            "ok": acme_mixed_p99 <= fairness_bound,
        },
    }
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short CI run (small rates and durations)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--workers", type=int, default=6,
                        help="worker threads; >= sum of tenant concurrency "
                             "caps so tenants cannot starve each other")
    parser.add_argument("--chain-length", type=int, default=None,
                        help="seed chain depth per tenant (default 6, smoke 5)")
    parser.add_argument("--baseline-seconds", type=float, default=None)
    parser.add_argument("--mixed-seconds", type=float, default=None)
    parser.add_argument("--overload-seconds", type=float, default=None)
    parser.add_argument("--acme-rate", type=float, default=None,
                        help="well-behaved tenant request rate (req/s)")
    parser.add_argument("--burst-rate", type=float, default=None,
                        help="bursty tenant base rate before modulation")
    parser.add_argument("--overload-rate", type=float, default=None,
                        help="overload-phase base rate for the bursty tenant")
    parser.add_argument("--no-check", action="store_true",
                        help="record results without enforcing gates")
    args = parser.parse_args()

    defaults = {
        # (full, smoke)
        "chain_length": (6, 5),
        # rates sized to the single-process deployment: the well-behaved
        # tenant stays under capacity while the bursty tenant's modulated
        # peaks (base × 2.5 × diurnal × burst) far exceed its 120 req/s
        # quota, so shedding — not raw saturation — is what's measured
        "baseline_seconds": (6.0, 3.0),
        "mixed_seconds": (12.0, 7.0),
        "overload_seconds": (5.0, 2.5),
        "acme_rate": (25.0, 20.0),
        "burst_rate": (40.0, 20.0),
        "overload_rate": (400.0, 250.0),
    }
    for name, (full, smoke) in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, smoke if args.smoke else full)
    args.deadline_s = 20.0

    quotas = {
        "acme": TenantQuota(
            requests_per_s=500.0, bytes_per_s=256 << 20,
            burst_requests=200.0, burst_bytes=64 << 20, max_inflight=64,
            max_concurrency=4,
        ),
        # the bursty tenant's quota is what overload crashes into; its
        # concurrency cap of 1 is what keeps the shared storage plane fair
        # (saves hold segment append locks and fsync batches — one slot
        # bounds how long another tenant's save can wait behind it)
        "burst": TenantQuota(
            requests_per_s=120.0, bytes_per_s=64 << 20,
            burst_requests=40.0, burst_bytes=32 << 20, max_inflight=12,
            max_concurrency=1,
        ),
    }

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as workdir:
        stores = SharedStores.cluster_at(
            workdir, shards=args.shards, replicas=args.replicas,
            chunk_cache_bytes=16 << 20,
        )
        registry = TenantRegistry(stores, quotas, approach="param_update")
        maintenance = IdleMaintenance(registry, max_depth=4, min_interval_s=1.0)
        server = GatewayServer(
            registry, workers=args.workers, maintenance=maintenance,
        )
        with server:
            results = asyncio.run(run_benchmark(args, server, registry, maintenance))
        fsck = registry.admin_manager().fsck(repair=True, verify_chunks=False)
        results["fsck"] = {
            "issues": len(fsck.issues),
            "unrepaired": len(fsck.unrepaired),
            "clean": not fsck.unrepaired,
        }
        results["acceptance"]["zero_lost_acked_writes"]["fsck_clean"] = (
            not fsck.unrepaired
        )
        results["acceptance"]["zero_lost_acked_writes"]["ok"] = (
            results["acceptance"]["zero_lost_acked_writes"]["ok"]
            and not fsck.unrepaired
        )

    results["config"] = {
        "smoke": args.smoke,
        "seed": args.seed,
        "shards": args.shards,
        "replicas": args.replicas,
        "workers": args.workers,
        "chain_length": args.chain_length,
        "rates": {
            "acme": args.acme_rate,
            "burst": args.burst_rate,
            "overload": args.overload_rate,
        },
        "seconds": {
            "baseline": args.baseline_seconds,
            "mixed": args.mixed_seconds,
            "overload": args.overload_seconds,
        },
        "quotas": {
            name: {
                "requests_per_s": q.requests_per_s,
                "bytes_per_s": q.bytes_per_s,
                "max_inflight": q.max_inflight,
            }
            for name, q in quotas.items()
        },
    }

    write_results("BENCH_serving.json", results)

    print("\n== serving benchmark ==")
    for tenant, summary in results["phases"]["mixed"].items():
        lat = summary["latency_s"]
        print(
            f"  mixed {tenant:<6} qps={summary['qps_sustained']:>7.1f} "
            f"p50={lat['p50'] * 1e3:7.1f}ms p99={lat['p99'] * 1e3:7.1f}ms "
            f"shed_rate={summary['shed_rate']:.3f}"
        )
    over = results["phases"]["overload"]["burst"]
    print(
        f"  overload burst  issued={over['issued']} shed={over['shed']} "
        f"shed_rate={over['shed_rate']:.3f}"
    )
    print(f"  maintenance: {results['maintenance']}")
    failed = []
    for gate, payload in results["acceptance"].items():
        status = "ok" if payload["ok"] else "FAILED"
        print(f"  gate {gate:<28} {status}")
        if not payload["ok"]:
            failed.append(gate)
    if failed and not args.no_check:
        print(f"acceptance FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
