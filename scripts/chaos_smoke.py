#!/usr/bin/env python
"""CI chaos smoke: fault-injected saves, crash points, fsck repair.

Exercises the robustness stack end to end, quickly:

* every save approach (baseline / param_update / provenance) saves and
  recovers a model **bitwise** through ``FaultInjector`` rates well above
  the acceptance bar (>= 10% transient errors + outages), with
  ``RetryPolicy`` absorbing the failures;
* a crash matrix kills a baseline save at every operation index in turn
  (``CrashPoint``), runs ``ModelManager.fsck`` after each death, and
  requires every crash to repair to zero unrepaired issues with the
  previously saved base model intact;
* a short randomized-seed sweep repeats the retry scenario under fresh
  fault schedules.

Writes ``BENCH_chaos.json`` into ``benchmarks/results/`` (canonical;
copied to the repo root) with the scenarios run, total retries taken,
and ``repairs_needed`` — the count of unrepaired issues left anywhere,
which must be 0 for a zero exit status.

Usage::

    python scripts/chaos_smoke.py [--sweep-seeds 3] [--out BENCH_chaos.json]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))  # for the tests.conftest tiny-model factory

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    ProvenanceSaveService,
)
from repro.docstore import DocumentStore  # noqa: E402
from repro.faults import CrashPoint, FaultInjector, FaultyDocumentStore  # noqa: E402
from repro.filestore import FileStore  # noqa: E402
from repro.retry import RetryPolicy  # noqa: E402
from tests.conftest import make_tiny_cnn  # noqa: E402

SERVICES = {
    "baseline": BaselineSaveService,
    "param_update": ParameterUpdateSaveService,
    "provenance": ProvenanceSaveService,
}


def tiny_arch() -> ArchitectureRef:
    return ArchitectureRef.from_factory(
        "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
    )


def states_equal(model, other) -> bool:
    state, restored = model.state_dict(), other.state_dict()
    return all(np.array_equal(state[key], restored[key]) for key in state)


def chaos_stores(workdir: Path, faults: FaultInjector, retry: RetryPolicy | None):
    docs = FaultyDocumentStore(DocumentStore(), faults)
    files = FileStore(workdir / "files", faults=faults, retry=retry, tmp_grace_s=0.0)
    return docs, files


def retry_scenario(approach: str, seed: int) -> dict:
    """Flaky stores at >=10% rates: save + recover must be bitwise."""
    faults = FaultInjector(
        seed=seed,
        error_rate=0.12,
        outage_rate=0.12,
        corrupt_rate=0.05,
        torn_write_rate=0.05,
        max_consecutive_failures=3,
    )
    retry = RetryPolicy(max_attempts=8, base_delay_s=0.0, sleep=lambda s: None)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        docs, files = chaos_stores(workdir, faults, retry)
        service = SERVICES[approach](docs, files, scratch_dir=workdir / "scratch", retry=retry)
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))
        derived = make_tiny_cnn(seed=2)
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id, use_case="U_2")
        )
        bitwise = states_equal(base, service.recover_model(base_id).model) and (
            states_equal(derived, service.recover_model(derived_id).model)
        )
        report = manager.fsck()
    return {
        "scenario": f"retry/{approach}",
        "seed": seed,
        "bitwise_recovery": bitwise,
        "faults_injected": {
            key: faults.stats[key]
            for key in ("errors", "outages", "corruptions", "torn_writes")
        },
        "retries_taken": retry.retries_taken,
        "unrepaired_issues": len(report.unrepaired),
    }


def crash_matrix_scenario(seed: int) -> dict:
    """Kill a save at op 1, 2, 3, ...; fsck must repair every crash."""
    faults = FaultInjector(seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        docs, files = chaos_stores(workdir, faults, retry=None)
        service = BaselineSaveService(docs, files, scratch_dir=workdir / "scratch")
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        victim = make_tiny_cnn(seed=2)
        save_info = ModelSaveInfo(
            victim, tiny_arch(), base_model_id=base_id, use_case="U_3-1-1"
        )
        crashes = repaired = unrepaired = 0
        base_losses = 0
        for at in range(1, 500):
            faults.arm_crash(at)
            try:
                service.save_model(save_info)
            except CrashPoint:
                crashes += 1
                report = manager.fsck()
                repaired += len([i for i in report.issues if i.repaired])
                unrepaired += len(report.unrepaired)
                if not states_equal(base, service.recover_model(base_id).model):
                    base_losses += 1
            else:
                break
        faults.crash_at = None
        final_report = manager.fsck()
        unrepaired += len(final_report.unrepaired)
    return {
        "scenario": "crash-matrix/baseline",
        "seed": seed,
        "crash_points": crashes,
        "issues_repaired": repaired,
        "unrepaired_issues": unrepaired,
        "base_model_losses": base_losses,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sweep-seeds", type=int, default=3,
                        help="randomized-seed retry runs per approach")
    parser.add_argument("--out", default=str(ROOT / "BENCH_chaos.json"))
    args = parser.parse_args()

    started = time.time()
    scenarios = []
    for approach in SERVICES:
        scenarios.append(retry_scenario(approach, seed=13))
    scenarios.append(crash_matrix_scenario(seed=0))
    # randomized sweep: different fault schedules, same guarantees
    sweep_base = int(time.time()) % 10_000
    for offset in range(args.sweep_seeds):
        approach = list(SERVICES)[offset % len(SERVICES)]
        scenarios.append(retry_scenario(approach, seed=sweep_base + offset))

    repairs_needed = sum(s.get("unrepaired_issues", 0) for s in scenarios)
    bad_recoveries = sum(
        1 for s in scenarios if s.get("bitwise_recovery") is False
    ) + sum(s.get("base_model_losses", 0) for s in scenarios)
    result = {
        "suite": "chaos-smoke",
        "elapsed_s": round(time.time() - started, 2),
        "scenarios_run": len(scenarios),
        "retries_taken": sum(s.get("retries_taken", 0) for s in scenarios),
        "crash_points": sum(s.get("crash_points", 0) for s in scenarios),
        "repairs_needed": repairs_needed,
        "bitwise_failures": bad_recoveries,
        "scenarios": scenarios,
    }

    from _bench_results import write_results

    canonical = write_results("BENCH_chaos.json", result)
    out = Path(args.out)
    if out.resolve() != (ROOT / "BENCH_chaos.json").resolve():
        shutil.copy(canonical, out)
    print(json.dumps({k: v for k, v in result.items() if k != "scenarios"}, indent=2))

    if repairs_needed or bad_recoveries:
        print("chaos smoke FAILED: unrepaired damage or non-bitwise recovery",
              file=sys.stderr)
        return 1
    print(f"chaos smoke OK: {len(scenarios)} scenarios, "
          f"{result['retries_taken']} retries absorbed, "
          f"{result['crash_points']} crash points repaired")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
