#!/usr/bin/env python
"""CI chaos smoke: fault-injected saves, crash points, fsck repair.

Exercises the robustness stack end to end, quickly:

* every save approach (baseline / param_update / provenance) saves and
  recovers a model **bitwise** through ``FaultInjector`` rates well above
  the acceptance bar (>= 10% transient errors + outages), with
  ``RetryPolicy`` absorbing the failures;
* a crash matrix kills a baseline save at every operation index in turn
  (``CrashPoint``), runs ``ModelManager.fsck`` after each death, and
  requires every crash to repair to zero unrepaired issues with the
  previously saved base model intact;
* a short randomized-seed sweep repeats the retry scenario under fresh
  fault schedules;
* a scheduled-outage run (``--outage-plan``) drives live traffic into a
  self-healing 4-shard cluster while members are killed and restored at
  fixed op counts: every acked save must recover bitwise afterwards, and
  the cluster must converge (hints drained, anti-entropy backlog empty)
  through its *online* machinery alone — no offline ``fsck --repair``.

Writes ``BENCH_chaos.json`` into ``benchmarks/results/`` (canonical;
copied to the repo root) with the scenarios run, total retries taken,
``repairs_needed`` — the count of unrepaired issues left anywhere — and
the outage run's convergence time, all of which gate the exit status.

Usage::

    python scripts/chaos_smoke.py [--sweep-seeds 3] [--out BENCH_chaos.json] \\
        [--outage-plan "kill:shard-1@6,restore:shard-1@16,kill:shard-2@20,restore:shard-2@30"]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))  # for the tests.conftest tiny-model factory

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    ArchitectureRef,
    BaselineSaveService,
    ModelManager,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    ProvenanceSaveService,
)
from repro.docstore import DocumentStore  # noqa: E402
from repro.faults import CrashPoint, FaultInjector, FaultyDocumentStore  # noqa: E402
from repro.filestore import FileStore  # noqa: E402
from repro.retry import RetryPolicy  # noqa: E402
from tests.conftest import make_tiny_cnn  # noqa: E402

SERVICES = {
    "baseline": BaselineSaveService,
    "param_update": ParameterUpdateSaveService,
    "provenance": ProvenanceSaveService,
}


def tiny_arch() -> ArchitectureRef:
    return ArchitectureRef.from_factory(
        "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
    )


def states_equal(model, other) -> bool:
    state, restored = model.state_dict(), other.state_dict()
    return all(np.array_equal(state[key], restored[key]) for key in state)


def chaos_stores(workdir: Path, faults: FaultInjector, retry: RetryPolicy | None):
    docs = FaultyDocumentStore(DocumentStore(), faults)
    files = FileStore(workdir / "files", faults=faults, retry=retry, tmp_grace_s=0.0)
    return docs, files


def retry_scenario(approach: str, seed: int) -> dict:
    """Flaky stores at >=10% rates: save + recover must be bitwise."""
    faults = FaultInjector(
        seed=seed,
        error_rate=0.12,
        outage_rate=0.12,
        corrupt_rate=0.05,
        torn_write_rate=0.05,
        max_consecutive_failures=3,
    )
    retry = RetryPolicy(max_attempts=8, base_delay_s=0.0, sleep=lambda s: None)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        docs, files = chaos_stores(workdir, faults, retry)
        service = SERVICES[approach](docs, files, scratch_dir=workdir / "scratch", retry=retry)
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))
        derived = make_tiny_cnn(seed=2)
        derived_id = service.save_model(
            ModelSaveInfo(derived, tiny_arch(), base_model_id=base_id, use_case="U_2")
        )
        bitwise = states_equal(base, service.recover_model(base_id).model) and (
            states_equal(derived, service.recover_model(derived_id).model)
        )
        report = manager.fsck()
    return {
        "scenario": f"retry/{approach}",
        "seed": seed,
        "bitwise_recovery": bitwise,
        "faults_injected": {
            key: faults.stats[key]
            for key in ("errors", "outages", "corruptions", "torn_writes")
        },
        "retries_taken": retry.retries_taken,
        "unrepaired_issues": len(report.unrepaired),
    }


def crash_matrix_scenario(seed: int) -> dict:
    """Kill a save at op 1, 2, 3, ...; fsck must repair every crash."""
    faults = FaultInjector(seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        docs, files = chaos_stores(workdir, faults, retry=None)
        service = BaselineSaveService(docs, files, scratch_dir=workdir / "scratch")
        manager = ModelManager(service)

        base = make_tiny_cnn(seed=1)
        base_id = service.save_model(ModelSaveInfo(base, tiny_arch(), use_case="U_1"))

        victim = make_tiny_cnn(seed=2)
        save_info = ModelSaveInfo(
            victim, tiny_arch(), base_model_id=base_id, use_case="U_3-1-1"
        )
        crashes = repaired = unrepaired = 0
        base_losses = 0
        for at in range(1, 500):
            faults.arm_crash(at)
            try:
                service.save_model(save_info)
            except CrashPoint:
                crashes += 1
                report = manager.fsck()
                repaired += len([i for i in report.issues if i.repaired])
                unrepaired += len(report.unrepaired)
                if not states_equal(base, service.recover_model(base_id).model):
                    base_losses += 1
            else:
                break
        faults.crash_at = None
        final_report = manager.fsck()
        unrepaired += len(final_report.unrepaired)
    return {
        "scenario": "crash-matrix/baseline",
        "seed": seed,
        "crash_points": crashes,
        "issues_repaired": repaired,
        "unrepaired_issues": unrepaired,
        "base_model_losses": base_losses,
    }


DEFAULT_OUTAGE_PLAN = (
    "kill:shard-1@6,restore:shard-1@16,kill:shard-2@20,restore:shard-2@30"
)


def parse_outage_plan(spec: str) -> dict[int, list[tuple[str, str]]]:
    """``action:member@op`` entries, comma-separated, into op -> actions."""
    schedule: dict[int, list[tuple[str, str]]] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        try:
            action, rest = entry.split(":", 1)
            member, at_text = rest.split("@", 1)
            at = int(at_text)
        except ValueError as exc:
            raise SystemExit(
                f"bad --outage-plan entry {entry!r} (want action:member@op)"
            ) from exc
        if action not in ("kill", "restore"):
            raise SystemExit(
                f"bad --outage-plan action {action!r} (want kill or restore)"
            )
        schedule.setdefault(at, []).append((action, member))
    return schedule


def outage_scenario(plan: str, seed: int) -> dict:
    """Scheduled member outages under live traffic on a self-healing cluster.

    Members die and return at fixed op counts while saves and failover
    reads keep flowing (write quorum 1-of-2, so single-member outages
    still ack — degraded, leaving hints).  Afterwards the run waits for
    *online* convergence: the background deliverer/scanner/monitor
    threads must drain every hint and clear the anti-entropy backlog,
    and every acked save must recover bitwise.  The final fsck is
    audit-only — offline repair doing the healing would be a failure.
    """
    from repro import deadline
    from repro.cluster import AntiEntropyScanner
    from repro.distsim.environment import SharedStores

    schedule = parse_outage_plan(plan)
    total_ops = (max(schedule) if schedule else 15) + 5
    shards = 4
    retry = RetryPolicy(max_attempts=4, base_delay_s=0.0, sleep=lambda s: None)
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        member_faults = {
            f"shard-{i}": FaultInjector(seed=seed + i) for i in range(shards)
        }
        for action_list in schedule.values():
            for _, member in action_list:
                if member not in member_faults:
                    raise SystemExit(
                        f"--outage-plan names unknown member {member!r} "
                        f"(have {sorted(member_faults)})"
                    )
        stores = SharedStores.cluster_at(
            workdir / "cluster", shards=shards, replicas=2, write_quorum=1,
            retry=retry, member_faults=member_faults, self_heal=True,
        )
        # the run compresses hours of traffic into seconds, so the breaker
        # cooldowns must compress too — otherwise a member restored one op
        # ago is still gated when the next member dies
        stores.detector.breaker_cooldown_s = 0.02
        stores.detector.max_cooldown_s = 0.2
        service = BaselineSaveService(
            stores.documents, stores.files,
            scratch_dir=stores.scratch_dir, retry=retry,
        )
        manager = ModelManager(service)
        deliverer, scanner, monitor = stores.healers(
            deliver_interval_s=0.05, scan_interval_s=0.1,
            probe_interval_s=0.05,
        )
        deliverer.start()
        scanner.start()
        monitor.start()

        acked: list[tuple[str, object]] = []
        kills = restores = failed_saves = failed_reads = 0
        try:
            for op in range(1, total_ops + 1):
                for action, member in schedule.get(op, ()):
                    member_faults[member].set_down(action == "kill")
                    if action == "kill":
                        kills += 1
                    else:
                        restores += 1
                model = make_tiny_cnn(seed=100 + op)
                info = ModelSaveInfo(model, tiny_arch(), use_case=f"chaos-{op}")
                try:
                    with deadline.scope(30.0):
                        model_id = service.save_model(info)
                except OSError:
                    failed_saves += 1  # quorum miss: not acked, not counted
                    continue
                acked.append((model_id, model))
                time.sleep(0.005)  # let the background healers interleave
                if acked and op % 5 == 0:
                    probe_id, _ = acked[(op // 5) % len(acked)]
                    try:
                        with deadline.scope(30.0):
                            service.recover_model(probe_id)
                    except OSError:
                        failed_reads += 1  # transient: durability checked below

            # everyone back up; converge through the online machinery only
            for injector in member_faults.values():
                injector.set_down(False)
            healing_started = time.time()
            converged = False
            while time.time() - healing_started < 60.0:
                if stores.hints.total_pending() == 0:
                    audit = AntiEntropyScanner(
                        stores.files, detector=stores.detector
                    ).full_sweep(repair=False)
                    if audit["backlog"] == 0:
                        converged = True
                        break
                time.sleep(0.05)
            convergence_s = time.time() - healing_started
        finally:
            deliverer.close()
            scanner.close()
            monitor.close()

        lost = non_bitwise = 0
        for model_id, model in acked:
            try:
                recovered = service.recover_model(model_id)
            except Exception:
                lost += 1
                continue
            if not states_equal(model, recovered.model):
                non_bitwise += 1
        audit_report = manager.fsck(repair=False)
        detector_snapshot = stores.detector.snapshot()
    return {
        "scenario": "outage-plan/cluster",
        "seed": seed,
        "plan": plan,
        "ops": total_ops,
        "kills": kills,
        "restores": restores,
        "acked_saves": len(acked),
        "failed_saves": failed_saves,
        "failed_reads_during_outage": failed_reads,
        "lost_acked_writes": lost,
        "bitwise_recovery": lost == 0 and non_bitwise == 0,
        "hints": {
            key: stores.hints.stats[key]
            for key in ("recorded", "delivered", "stale")
        },
        "hints_pending_after": stores.hints.total_pending(),
        "anti_entropy": {
            key: scanner.stats[key]
            for key in ("keys_scanned", "repaired", "deferred", "unrepairable")
        },
        "breaker_trips": sum(
            snap["breaker_trips"] for snap in detector_snapshot.values()
        ),
        "converged": converged,
        "convergence_s": round(convergence_s, 3),
        "unrepaired_issues": len(audit_report.issues),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sweep-seeds", type=int, default=3,
                        help="randomized-seed retry runs per approach")
    parser.add_argument("--out", default=str(ROOT / "BENCH_chaos.json"))
    parser.add_argument(
        "--outage-plan", default=DEFAULT_OUTAGE_PLAN, metavar="PLAN",
        help="scheduled cluster outages as action:member@op entries, "
             "comma-separated (empty string skips the scenario); default: "
             f"{DEFAULT_OUTAGE_PLAN!r}",
    )
    parser.add_argument("--outage-seed", type=int, default=5,
                        help="fault seed for the scheduled-outage run")
    args = parser.parse_args()

    started = time.time()
    scenarios = []
    for approach in SERVICES:
        scenarios.append(retry_scenario(approach, seed=13))
    scenarios.append(crash_matrix_scenario(seed=0))
    if args.outage_plan:
        scenarios.append(outage_scenario(args.outage_plan, seed=args.outage_seed))
    # randomized sweep: different fault schedules, same guarantees
    sweep_base = int(time.time()) % 10_000
    for offset in range(args.sweep_seeds):
        approach = list(SERVICES)[offset % len(SERVICES)]
        scenarios.append(retry_scenario(approach, seed=sweep_base + offset))

    repairs_needed = sum(s.get("unrepaired_issues", 0) for s in scenarios)
    bad_recoveries = sum(
        1 for s in scenarios if s.get("bitwise_recovery") is False
    ) + sum(s.get("base_model_losses", 0) for s in scenarios)
    lost_acked = sum(s.get("lost_acked_writes", 0) for s in scenarios)
    unconverged = sum(1 for s in scenarios if s.get("converged") is False)
    outage_runs = [s for s in scenarios if s["scenario"].startswith("outage-plan")]
    result = {
        "suite": "chaos-smoke",
        "elapsed_s": round(time.time() - started, 2),
        "scenarios_run": len(scenarios),
        "retries_taken": sum(s.get("retries_taken", 0) for s in scenarios),
        "crash_points": sum(s.get("crash_points", 0) for s in scenarios),
        "repairs_needed": repairs_needed,
        "bitwise_failures": bad_recoveries,
        "lost_acked_writes": lost_acked,
        "outages_unconverged": unconverged,
        "outage_convergence_s": (
            outage_runs[0]["convergence_s"] if outage_runs else None
        ),
        "scenarios": scenarios,
    }

    from _bench_results import write_results

    canonical = write_results("BENCH_chaos.json", result)
    out = Path(args.out)
    if out.resolve() != (ROOT / "BENCH_chaos.json").resolve():
        shutil.copy(canonical, out)
    print(json.dumps({k: v for k, v in result.items() if k != "scenarios"}, indent=2))

    if repairs_needed or bad_recoveries or lost_acked or unconverged:
        print("chaos smoke FAILED: unrepaired damage, lost acked writes, "
              "non-bitwise recovery, or unconverged cluster",
              file=sys.stderr)
        return 1
    print(f"chaos smoke OK: {len(scenarios)} scenarios, "
          f"{result['retries_taken']} retries absorbed, "
          f"{result['crash_points']} crash points repaired"
          + (f", outage converged in {result['outage_convergence_s']}s"
             if outage_runs else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
