"""Figure 13: deterministic vs non-deterministic training time.

The paper trains ResNet-18/50/152 on CO-512 in both modes and splits the
per-batch time into data loading, forward pass, and backward pass.
Findings reproduced here:

* deterministic execution slows the forward and backward passes but not
  data loading;
* ResNet-50/152 slow down only moderately (they share Bottleneck layers),
  while ResNet-18's backward pass more than doubles (its BasicBlock convs
  only have a far slower deterministic implementation);
* per-batch times are ~constant over additional epochs, so the relative
  slowdown is independent of epoch count (Section 4.5's 10x-epochs check).
"""

import statistics
import time

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import SGD, Tensor, manual_seed, rng
from repro.nn.data import DataLoader
from repro.nn.models import create_model
from repro.workloads import generate_dataset
from repro.workloads.datasets import SyntheticImageFolder

from conftest import (
    CACHE_DIR,
    DATASET_SCALE,
    FULL_RUN,
    MODEL_SCALE,
    NUM_CLASSES,
    Report,
    fmt_ms,
)

ARCHITECTURES = ("resnet18", "resnet50", "resnet152")
BATCHES = 6 if FULL_RUN else 3
BATCH_SIZE = 16
# 64x64 inputs keep the convolution kernels (where the determinism cost
# lives) dominant over memory-bound bookkeeping, as on the paper's GPU.
IMAGE_SIZE = 64


def timed_training(architecture: str, deterministic: bool, batches: int = BATCHES):
    """Per-phase times (load/forward/backward) over ``batches`` batches."""
    dataset_root = generate_dataset("co512", CACHE_DIR / "datasets", scale=DATASET_SCALE)
    dataset = SyntheticImageFolder(dataset_root, image_size=IMAGE_SIZE, num_classes=NUM_CLASSES)
    manual_seed(0)
    model = create_model(architecture, num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
    model.train()
    optimizer = SGD(list(model.parameters()), lr=0.01, momentum=0.9)
    loader = DataLoader(dataset, batch_size=BATCH_SIZE, shuffle=True)
    times = {"load": [], "forward": [], "backward": []}
    with rng.deterministic_mode(deterministic):
        iterator = iter(loader)
        for _ in range(batches):
            started = time.perf_counter()
            images, labels = next(iterator)
            times["load"].append(time.perf_counter() - started)

            started = time.perf_counter()
            optimizer.zero_grad()
            output = model(images)
            logits = output[0] if isinstance(output, tuple) else output
            loss = F.cross_entropy(logits, labels)
            times["forward"].append(time.perf_counter() - started)

            started = time.perf_counter()
            loss.backward()
            optimizer.step()
            times["backward"].append(time.perf_counter() - started)
    return {phase: statistics.median(values) for phase, values in times.items()}


def test_fig13_deterministic_report(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    report = Report(
        "fig13", "Deterministic vs non-deterministic training time (paper Fig. 13)"
    )
    rows = []
    slowdowns = {}
    for architecture in ARCHITECTURES:
        nondet = timed_training(architecture, deterministic=False)
        det = timed_training(architecture, deterministic=True)
        backward_ratio = det["backward"] / nondet["backward"]
        total_ratio = sum(det.values()) / sum(nondet.values())
        slowdowns[architecture] = (backward_ratio, total_ratio)
        for mode, timings in (("non-det", nondet), ("det", det)):
            rows.append(
                [
                    architecture,
                    mode,
                    fmt_ms(timings["load"]),
                    fmt_ms(timings["forward"]),
                    fmt_ms(timings["backward"]),
                ]
            )
    report.table(["model", "mode", "load", "forward", "backward"], rows)
    for architecture, (backward_ratio, total_ratio) in slowdowns.items():
        report.line(
            f"{architecture}: deterministic backward {backward_ratio:.2f}x, "
            f"total {total_ratio:.2f}x"
        )

    # shape checks from Section 4.5
    assert slowdowns["resnet18"][0] > 1.5, (
        "ResNet-18's deterministic backward pass must slow down heavily "
        f"(measured {slowdowns['resnet18'][0]:.2f}x; the paper reports >2x "
        "on an A100 — on this memory-bound numpy substrate the kernel cost "
        "is a smaller fraction of the step)"
    )
    for architecture in ("resnet50", "resnet152"):
        assert slowdowns[architecture][0] < 0.75 * slowdowns["resnet18"][0], (
            f"{architecture} must slow down far less than ResNet-18"
        )
    report.line()

    # per-batch constancy over more epochs (10x batches, ResNet-18)
    short = timed_training("resnet18", deterministic=True, batches=3)
    longer = timed_training("resnet18", deterministic=True, batches=9)
    drift = sum(longer.values()) / sum(short.values())
    report.line(
        f"per-batch time drift over 3x the batches (resnet18, det): {drift:.2f}x"
    )
    assert 0.5 < drift < 2.0, "per-batch times must stay ~constant across epochs"
    report.write()


@pytest.mark.parametrize("deterministic", [False, True], ids=["nondet", "det"])
def test_resnet18_training_step(benchmark, deterministic):
    """Microbenchmark: one ResNet-18 training batch per mode."""
    dataset_root = generate_dataset("co512", CACHE_DIR / "datasets", scale=DATASET_SCALE)
    dataset = SyntheticImageFolder(dataset_root, image_size=IMAGE_SIZE, num_classes=NUM_CLASSES)
    manual_seed(0)
    model = create_model("resnet18", num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
    model.train()
    optimizer = SGD(list(model.parameters()), lr=0.01)
    images = Tensor(np.stack([dataset[i][0] for i in range(BATCH_SIZE)]))
    labels = np.array([int(dataset[i][1]) for i in range(BATCH_SIZE)])

    def step():
        with rng.deterministic_mode(deterministic):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(images), labels)
            loss.backward()
            optimizer.step()

    benchmark.pedantic(step, rounds=3, iterations=1)
