"""Section 4.7 validation: the NLP regime where the MPA dominates.

"If we work in a domain with large models, but small datasets (for
example, natural language processing) ... the MPA is the best approach for
storage consumption and TTS."  This bench builds that workload for real —
a text classifier whose embedding table dominates its parameters, trained
on a small token corpus — and measures all three approaches end to end.
"""

import time

import pytest

import repro.nn as nn
from repro.core import ArchitectureRef, ModelSaveInfo
from repro.distsim import SharedStores, make_service
from repro.nn.models import text_classifier
from repro.workloads import generate_text_corpus
from repro.workloads.relations import TrainingRun

from conftest import CACHE_DIR, Report, fmt_mb, fmt_ms

MODEL_KWARGS = {
    "vocab_size": 50_000,
    "embedding_dim": 64,
    "hidden_dim": 64,
    "num_classes": 4,
}
DERIVED_MODELS = 4


def build_workload():
    corpus = generate_text_corpus(
        CACHE_DIR / "text", num_documents=2_000, sequence_length=32,
        vocab_size=MODEL_KWARGS["vocab_size"],
    )
    nn.manual_seed(0)
    base = text_classifier(**MODEL_KWARGS)
    arch = ArchitectureRef.from_factory(
        "repro.nn.models", "text_classifier", MODEL_KWARGS
    )
    # pre-train the derivation chain once (like the evaluation flows)
    states = [base.state_dict()]
    runs = []
    for index in range(DERIVED_MODELS):
        model = text_classifier(**MODEL_KWARGS)
        model.load_state_dict(states[-1])
        run = TrainingRun(
            dataset_dir=corpus,
            number_epochs=1,
            number_batches=2,
            seed=100 + index,
            batch_size=64,
            dataset_class="repro.workloads.text_data.SyntheticTextCorpus",
            dataset_kwargs={"vocab_size": MODEL_KWARGS["vocab_size"]},
        )
        run.execute(model)
        states.append(model.state_dict())
        runs.append(run)
    return corpus, arch, states, runs


def test_nlp_scenario_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("nlp_scenario", "NLP regime: large model, small dataset (§4.7)")
    corpus, arch, states, runs = build_workload()
    model_bytes = sum(v.nbytes for v in states[0].values())
    corpus_bytes = sum(p.stat().st_size for p in corpus.rglob("*") if p.is_file())
    report.line(
        f"model: {fmt_mb(model_bytes)} parameters (embedding-dominated); "
        f"corpus: {fmt_mb(corpus_bytes)} — model/dataset ratio "
        f"{model_bytes / corpus_bytes:.0f}x"
    )
    report.line()

    rows = []
    totals = {}
    for approach in ("baseline", "param_update", "provenance"):
        stores = SharedStores.at(bench_workdir / f"nlp-{approach}")
        service = make_service(approach, stores, dataset_codec="stored")
        nn.manual_seed(0)
        base = text_classifier(**MODEL_KWARGS)
        base.load_state_dict(states[0])
        base_id = service.save_model(ModelSaveInfo(base, arch, use_case="U_1"))
        save_seconds = 0.0
        storage = 0
        previous = base_id
        for index, run in enumerate(runs):
            model = text_classifier(**MODEL_KWARGS)
            model.load_state_dict(states[index + 1])
            started = time.perf_counter()
            if approach == "provenance":
                model_id = service.save_model(
                    run.to_provenance_info(previous, trained_model=model)
                )
            else:
                model_id = service.save_model(
                    ModelSaveInfo(model, arch, base_model_id=previous)
                )
            save_seconds += time.perf_counter() - started
            storage += service.model_save_size(model_id).total
            previous = model_id
        # recover the deepest model once (TTR context for the tradeoff)
        started = time.perf_counter()
        recovered = service.recover_model(previous)
        ttr = time.perf_counter() - started
        assert recovered.verified is not False
        totals[approach] = (storage, save_seconds, ttr)
        rows.append(
            [
                approach,
                fmt_mb(storage),
                fmt_ms(save_seconds / DERIVED_MODELS),
                fmt_ms(ttr),
            ]
        )
    report.table(
        ["approach", f"storage ({DERIVED_MODELS} derived)", "mean TTS", "TTR (deepest)"],
        rows,
    )

    # §4.7 claims for the NLP regime
    ba_storage, ba_tts, ba_ttr = totals["baseline"]
    mpa_storage, mpa_tts, mpa_ttr = totals["provenance"]
    assert mpa_storage < 0.25 * ba_storage, "MPA must dominate storage for NLP"
    assert mpa_tts < ba_tts, "MPA must dominate TTS for NLP"
    assert mpa_ttr > ba_ttr, "the price: MPA recovery replays training"
    report.line(
        f"MPA saves {1 - mpa_storage / ba_storage:.0%} storage and "
        f"{1 - mpa_tts / ba_tts:.0%} TTS vs BA, at {mpa_ttr / ba_ttr:.1f}x the TTR "
        "— the paper's storage-retraining tradeoff in its best MPA regime."
    )
    report.write()
