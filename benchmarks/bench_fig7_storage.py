"""Figure 7: storage consumption per use case across approaches.

Four panels: (a) fully and (b) partially updated MobileNetV2, (c) fully and
(d) partially updated ResNet-152, trained on CF-512.  Expected shapes
(paper Section 4.2):

* BA storage constant across use cases and relations;
* PUA ~= BA for fully updated versions, dramatically lower for partially
  updated versions (paper: -63.7% MobileNetV2, -95.6% ResNet-152);
* MPA constant at ~dataset size: above BA for MobileNetV2, below BA for
  ResNet-152 at full scale (crossover driven by the dataset/model ratio).
"""

import pytest

from repro.core.schema import APPROACHES
from repro.distsim import SharedStores, make_service

from conftest import Report, chain_config, fmt_mb, get_chain, save_chain_through

PANELS = [
    ("a", "mobilenetv2", "fully_updated"),
    ("b", "mobilenetv2", "partially_updated"),
    ("c", "resnet152", "fully_updated"),
    ("d", "resnet152", "partially_updated"),
]


def measure_panel(workdir, architecture: str, relation: str) -> dict:
    chain = get_chain(chain_config(architecture, relation, u3_dataset="cf512"))
    panel = {}
    for approach in APPROACHES:
        stores = SharedStores.at(workdir / f"fig7-{architecture}-{relation}-{approach}")
        service = make_service(approach, stores)
        ids = save_chain_through(service, chain, approach)
        panel[approach] = {
            use_case: service.model_save_size(model_id).total
            for use_case, model_id in ids.items()
        }
    return panel


def test_fig7_storage_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("fig7", "Storage consumption across approaches (paper Fig. 7)")
    for panel_id, architecture, relation in PANELS:
        panel = measure_panel(bench_workdir, architecture, relation)
        use_cases = [u for u in panel["baseline"] if u != "U_2"]  # as in the paper
        report.line(f"({panel_id}) {relation} {architecture}, CF-512")
        report.table(
            ["use case"] + list(APPROACHES),
            [[u] + [fmt_mb(panel[a][u]) for a in APPROACHES] for u in use_cases],
        )

        ba = panel["baseline"]
        pua = panel["param_update"]
        mpa = panel["provenance"]
        derived = [u for u in use_cases if u != "U_1"]
        pua_saving = 1 - sum(pua[u] for u in derived) / sum(ba[u] for u in derived)
        report.line(f"    PUA saving vs BA over derived models: {pua_saving:+.1%}")
        mpa_ratio = sum(mpa[u] for u in derived) / sum(ba[u] for u in derived)
        report.line(f"    MPA/BA storage ratio over derived models: {mpa_ratio:.2f}x")
        report.line()

        # paper claims, shape-checked at bench scale
        ba_values = [ba[u] for u in use_cases]
        assert max(ba_values) / min(ba_values) < 1.05, "BA storage must be constant"
        if relation == "partially_updated":
            assert pua_saving > 0.5, "partial updates must save >50% vs BA"
        else:
            assert abs(pua_saving) < 0.1, "full updates: PUA ~= BA"
    report.write()
