"""Network-transfer budgets per approach (§1 motivating example).

"Even for a single model, it is beneficial to save storage in cases when a
transfer with limited available bandwidth is required."  This bench runs
the standard evaluation flow over simulated storage links — the paper's
100G InfiniBand and a vehicle-fleet LTE uplink — and reports the modelled
transfer time per approach.  For the BMS scenario (partial updates over
cellular), the PUA's tiny updates are the difference between seconds and
minutes of uplink time per model version.
"""

import pytest

from repro.core.schema import APPROACHES
from repro.distsim import STANDARD, SharedStores, run_evaluation_flow
from repro.filestore import CELLULAR_LTE, INFINIBAND_100G

from conftest import Report, chain_config, fmt_mb, get_chain

LINKS = {"InfiniBand-100G": INFINIBAND_100G, "Cellular-LTE": CELLULAR_LTE}


def test_network_links_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "network_links", "Simulated transfer budgets per approach and link (§1)"
    )
    chain = get_chain(chain_config("mobilenetv2", "partially_updated"))
    rows = []
    uplink_seconds = {}
    for link_name, link in LINKS.items():
        for approach in APPROACHES:
            stores = SharedStores.at(
                bench_workdir / f"net-{link_name}-{approach}", network=link
            )
            run_evaluation_flow(
                approach, chain, STANDARD, stores,
                measure_recover=False, dataset_codec="stored",
            )
            files = stores.files
            rows.append(
                [
                    link_name,
                    approach,
                    fmt_mb(files.bytes_sent),
                    f"{files.simulated_seconds:.2f} s",
                ]
            )
            uplink_seconds[(link_name, approach)] = files.simulated_seconds
    report.table(["link", "approach", "bytes uploaded", "modelled transfer time"], rows)

    # partial updates over cellular: PUA must slash the uplink budget
    lte_ba = uplink_seconds[("Cellular-LTE", "baseline")]
    lte_pua = uplink_seconds[("Cellular-LTE", "param_update")]
    assert lte_pua < 0.5 * lte_ba, (
        "partial updates must cut the cellular transfer budget vs snapshots"
    )
    # the fast interconnect makes the choice immaterial time-wise
    ib_ba = uplink_seconds[("InfiniBand-100G", "baseline")]
    assert ib_ba < 0.1, "InfiniBand transfers are sub-100ms for the whole flow"
    report.line(
        f"Cellular uplink: PUA needs {lte_pua:.1f} s vs BA {lte_ba:.1f} s "
        f"({1 - lte_pua / lte_ba:.0%} saved) — the §1 limited-bandwidth argument."
    )
    report.write()


def test_adaptive_flow_runs_end_to_end(benchmark, bench_workdir):
    """The §4.7 adaptive service drives a whole evaluation flow."""

    def run():
        chain = get_chain(chain_config("mobilenetv2", "partially_updated"))
        stores = SharedStores.at(bench_workdir / "adaptive-flow")
        metrics = run_evaluation_flow("adaptive", chain, STANDARD, stores)
        assert metrics.model_count == STANDARD.model_count
        # derived saves must have routed to the parameter update approach
        storage = metrics.storage()
        assert storage["U_3-1-1"] < 0.6 * storage["U_1"]
        report = Report("adaptive_flow", "Adaptive service driving the standard flow")
        report.table(
            ["use case", "storage"],
            [[u, fmt_mb(storage[u])] for u in metrics.use_cases()],
        )
        report.line(
            "Derived (partial-update) saves routed to the PUA automatically; "
            "recovery of the mixed chain verified for every model."
        )
        report.write()

    benchmark.pedantic(run, rounds=1, iterations=1)
