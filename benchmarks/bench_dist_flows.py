"""Table 3 + Figures 14/15 + Section 4.6: distributed evaluation flows.

Runs the DIST-N evaluation flows (fully updated MobileNetV2, CO-512) and
reports per-use-case median TTS/TTR across nodes plus storage.  Expected
results (Section 4.6):

* model counts per flow match Table 3 (102 / 202 / 402);
* storage per use case is constant across flows and nodes;
* TTS is flat across use cases; BA ~= PUA (fully updated), MPA higher
  (it persists the dataset);
* TTR: BA flat, PUA/MPA staircases with resets at U_2 — the same trends as
  the standard flow, i.e. all approaches scale.

DIST-5 always runs; DIST-10/20 only with ``MMLIB_BENCH_FULL=1`` (the trends
are identical, as the paper also observes).
"""

import pytest

from repro.core.schema import APPROACHES
from repro.distsim import DIST_5, DIST_10, DIST_20, SharedStores, run_evaluation_flow

from conftest import FULL_RUN, Report, chain_config, fmt_mb, fmt_ms, get_chain

FLOWS = (DIST_5, DIST_10, DIST_20) if FULL_RUN else (DIST_5,)


def dist_chain():
    return get_chain(
        chain_config("mobilenetv2", "fully_updated", iterations=10, batches_per_epoch=2)
    )


def test_table3_model_counts(benchmark):
    def run():
        report = Report("table3", "Distributed evaluation flows (paper Table 3)")
        report.table(
            ["flow", "#nodes", "#models", "paper #models"],
            [
                ["STANDARD", 1, 10, 10],
                ["DIST-5", DIST_5.num_nodes, DIST_5.model_count, 102],
                ["DIST-10", DIST_10.num_nodes, DIST_10.model_count, 202],
                ["DIST-20", DIST_20.num_nodes, DIST_20.model_count, 402],
            ],
        )
        assert DIST_5.model_count == 102
        assert DIST_10.model_count == 202
        assert DIST_20.model_count == 402
        report.write()

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_dist_flows_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "fig14_15_dist", "Distributed flows: TTS (Fig. 14), TTR (Fig. 15), storage (§4.6)"
    )
    chain = dist_chain()
    storage_by_flow = {}
    for flow in FLOWS:
        for approach in APPROACHES:
            stores = SharedStores.at(bench_workdir / f"dist-{flow.name}-{approach}")
            metrics = run_evaluation_flow(approach, chain, flow, stores)
            assert metrics.model_count == flow.model_count
            tts, ttr, storage = metrics.median_tts(), metrics.median_ttr(), metrics.storage()
            storage_by_flow.setdefault(approach, {})[flow.name] = storage
            report.line(f"{flow.name} / {approach} ({metrics.model_count} models)")
            report.table(
                ["use case", "median TTS", "median TTR", "storage"],
                [
                    [u, fmt_ms(tts[u]), fmt_ms(ttr[u]), fmt_mb(storage[u])]
                    for u in metrics.use_cases()
                ],
            )

            use_cases = metrics.use_cases()
            # TTS flat across U_3 iterations (Fig. 14)
            u3_tts = [tts[u] for u in use_cases if u.startswith("U_3")]
            assert max(u3_tts) < 3 * min(u3_tts), "TTS must stay ~flat across use cases"
            # TTR shapes (Fig. 15)
            if approach == "baseline":
                ttr_values = [ttr[u] for u in use_cases]
                assert max(ttr_values) < 3 * min(ttr_values), "BA TTR must stay flat"
            else:
                assert ttr["U_3-1-10"] > ttr["U_3-1-1"], f"{approach} TTR must staircase"
                assert ttr["U_2"] < ttr["U_3-1-10"], "TTR must reset at U_2"

    # §4.6: storage constant across evaluation flows
    if len(FLOWS) > 1:
        for approach, flows in storage_by_flow.items():
            reference = flows[FLOWS[0].name]
            for flow_name, storage in flows.items():
                for use_case, value in storage.items():
                    assert value == pytest.approx(reference[use_case], rel=0.01), (
                        f"storage for {use_case} must be constant across flows "
                        f"({approach}, {flow_name})"
                    )
        report.line("Storage per use case is constant across DIST-5/10/20 flows.")
    report.write()
