"""Full-scale spot check: the paper's exact ResNet-152 payload.

Other benches run width-scaled models; this one saves and recovers a
*paper-sized* ResNet-152 snapshot (60.2M parameters, ~242 MB state dict —
Table 2's largest row) through the baseline approach, verifying that the
library handles the real payloads and that TTS/TTR land in a sane band
(the paper measured ~0.8 s TTS on its testbed).
"""

import time

import pytest

from repro.core import ArchitectureRef, ModelSaveInfo
from repro.distsim import SharedStores, make_service
from repro.nn.models import MODEL_REGISTRY, create_model

from conftest import Report, fmt_mb, fmt_ms


def test_full_scale_resnet152_roundtrip(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _run(bench_workdir), rounds=1, iterations=1)


def _run(bench_workdir):
    report = Report(
        "full_scale_spotcheck", "Paper-sized ResNet-152 snapshot round trip"
    )
    stores = SharedStores.at(bench_workdir / "full-scale")
    service = make_service("baseline", stores)
    model = create_model("resnet152", num_classes=1000, scale=1.0, seed=0)
    assert model.num_parameters() == MODEL_REGISTRY["resnet152"].paper_params
    state_bytes = sum(v.nbytes for v in model.state_dict().values())

    architecture = ArchitectureRef.from_factory(
        "repro.nn.models", "resnet152", {"num_classes": 1000, "scale": 1.0}
    )
    started = time.perf_counter()
    model_id = service.save_model(ModelSaveInfo(model, architecture, use_case="U_1"))
    tts = time.perf_counter() - started

    breakdown = service.model_save_size(model_id)
    started = time.perf_counter()
    recovered = service.recover_model(model_id)
    ttr = time.perf_counter() - started

    report.table(
        ["metric", "measured", "paper context"],
        [
            ["parameters", f"{model.num_parameters():,}", "60,192,808 (Table 2)"],
            ["state dict", fmt_mb(state_bytes), "241.7 MB (Table 2)"],
            ["stored", fmt_mb(breakdown.total), "BA stores the full snapshot"],
            ["TTS", fmt_ms(tts), "~0.8 s on the paper's testbed"],
            ["TTR (load+recover+verify)", fmt_ms(ttr), "Fig. 12's largest bar"],
        ],
    )
    assert recovered.verified is True
    assert breakdown.total > state_bytes  # snapshot + metadata
    assert tts < 30.0 and ttr < 30.0, "paper-sized payloads must stay interactive"
    for phase, seconds in recovered.timings.items():
        report.line(f"  {phase:<10} {fmt_ms(seconds)}")
    report.write()
