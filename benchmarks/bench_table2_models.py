"""Table 2: the evaluation architectures — parameter counts and sizes.

Regenerates the paper's Table 2 at ``scale=1.0`` (exact parameter counts)
and benchmarks model construction time, which also exposes GoogLeNet's
disproportionately slow initialization routine (relevant for Figure 12).
"""

import pytest

from repro.nn.models import (
    MODEL_REGISTRY,
    create_model,
    freeze_for_partial_update,
    list_models,
)

from conftest import Report


def test_table2_report(benchmark):
    benchmark.pedantic(_table2_report, rounds=1, iterations=1)


def _table2_report():
    report = Report("table2", "Selected model architectures (paper Table 2)")
    rows = []
    for name in list_models():
        spec = MODEL_REGISTRY[name]
        model = create_model(name, seed=0)
        params = model.num_parameters()
        freeze_for_partial_update(model)
        partial = model.num_parameters(trainable_only=True)
        size_mb = sum(v.nbytes for v in model.state_dict().values()) / 1e6
        rows.append(
            [
                name,
                f"{params:,}",
                f"{spec.paper_params:,}",
                f"{partial:,}",
                f"{spec.paper_partial_params:,}",
                f"{size_mb:.1f} MB",
                f"{spec.paper_size_mb} MB",
            ]
        )
        assert params == spec.paper_params
        assert partial == spec.paper_partial_params
    report.table(
        ["model", "#params", "paper", "part.updated", "paper", "size", "paper"],
        rows,
    )
    report.write()


@pytest.mark.parametrize("name", list_models())
def test_model_construction_time(benchmark, name):
    """Construction cost per architecture (GoogLeNet's init is the outlier
    the paper calls out in Figure 12)."""
    benchmark.pedantic(lambda: create_model(name, seed=0), rounds=3, iterations=1)
