"""Ablation: Merkle-tree vs flat per-layer diffing (design choice, §3.2).

The PUA finds changed layers through a Merkle tree.  This ablation sweeps
layer counts and changed-layer fractions and reports hash comparisons and
wall-clock time for both strategies, confirming the paper's claim that the
benefit grows with model depth and update sparsity (7 vs 8 comparisons at
8 layers; 13 vs 64 at 64; 15 vs 128 at 128).
"""

import hashlib
import time

import pytest

from repro.core import MerkleTree

from conftest import Report


def make_tree(num_layers: int, changed: set[int] = frozenset()) -> MerkleTree:
    names = [f"layer{i}" for i in range(num_layers)]
    hashes = [
        hashlib.sha256(f"{i}-{'b' if i in changed else 'a'}".encode()).hexdigest()
        for i in range(num_layers)
    ]
    return MerkleTree(names, hashes)


def test_merkle_ablation_report(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    report = Report("ablation_merkle", "Merkle vs flat layer diffing (§3.2 design choice)")
    rows = []
    for num_layers in (8, 64, 128, 512):
        for changed_count in (2, num_layers // 4, num_layers):
            changed = set(range(num_layers - changed_count, num_layers))
            base = make_tree(num_layers)
            derived = make_tree(num_layers, changed)
            merkle = base.diff(derived)
            flat = base.flat_diff(derived)
            assert merkle.changed_layers == flat.changed_layers
            rows.append(
                [
                    num_layers,
                    changed_count,
                    merkle.comparisons,
                    flat.comparisons,
                    f"{flat.comparisons / merkle.comparisons:.2f}x"
                    if merkle.comparisons <= flat.comparisons
                    else f"{merkle.comparisons / flat.comparisons:.2f}x worse",
                ]
            )
    report.table(
        ["#layers", "#changed (trailing)", "merkle cmp", "flat cmp", "merkle advantage"],
        rows,
    )

    # the paper's example numbers
    assert make_tree(8).diff(make_tree(8, {6, 7})).comparisons == 7
    assert make_tree(64).diff(make_tree(64, {62, 63})).comparisons == 13
    assert make_tree(128).diff(make_tree(128, {126, 127})).comparisons == 15
    report.line("Paper's example counts confirmed: 8->7, 64->13, 128->15 comparisons.")
    report.write()


@pytest.mark.parametrize("use_merkle", [True, False], ids=["merkle", "flat"])
def test_diff_time_sparse_change(benchmark, use_merkle):
    """Wall-clock diff cost, 512 layers, 2 changed (tree build excluded)."""
    base = make_tree(512)
    derived = make_tree(512, {510, 511})
    fn = base.diff if use_merkle else base.flat_diff
    benchmark(lambda: fn(derived))
