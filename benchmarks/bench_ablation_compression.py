"""Ablation: dataset compression codec for the MPA (design choice, §3.3).

"The run time of this step depends on the size of the dataset and the used
compression algorithm."  This ablation compares the deflate and stored
codecs on the evaluation datasets: image data is JPEG-like (incompressible
random bytes), so deflate buys almost nothing while costing CPU — which is
why the archive size, not the codec, is what drives MPA storage and TTS.
"""

import time

import pytest

from repro.core import CODEC_DEFLATE, CODEC_STORED, DatasetManager
from repro.filestore import FileStore
from repro.workloads import generate_dataset

from conftest import CACHE_DIR, DATASET_SCALE, Report, fmt_mb


def test_compression_ablation_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "ablation_compression", "MPA dataset compression codec (§3.3 design choice)"
    )
    rows = []
    stats = {}
    for dataset in ("co512", "cf512", "minet_val"):
        root = generate_dataset(dataset, CACHE_DIR / "datasets", scale=DATASET_SCALE)
        raw_bytes = sum(p.stat().st_size for p in root.rglob("*") if p.is_file())
        for codec in (CODEC_STORED, CODEC_DEFLATE):
            manager = DatasetManager(FileStore(bench_workdir / f"abl-comp-{codec}"), codec=codec)
            started = time.perf_counter()
            archive = manager.compress(root)
            elapsed = time.perf_counter() - started
            stats[(dataset, codec)] = (len(archive), elapsed)
            rows.append(
                [
                    dataset,
                    codec,
                    fmt_mb(raw_bytes),
                    fmt_mb(len(archive)),
                    f"{len(archive) / raw_bytes:.3f}",
                    f"{elapsed * 1e3:.0f} ms",
                ]
            )
    report.table(
        ["dataset", "codec", "raw", "archive", "ratio", "compress time"], rows
    )

    for dataset in ("co512", "cf512", "minet_val"):
        stored_size, stored_time = stats[(dataset, CODEC_STORED)]
        deflate_size, deflate_time = stats[(dataset, CODEC_DEFLATE)]
        assert deflate_size < stored_size * 1.01, "deflate must never inflate"
        assert deflate_size > stored_size * 0.9, (
            "JPEG-like image data must be near-incompressible"
        )
        assert deflate_time > stored_time, "deflate must cost more CPU than stored"
    report.line(
        "Deflate gains <10% on image data while costing CPU; the dataset's "
        "byte size, not the codec, drives MPA storage and TTS."
    )
    report.write()


@pytest.mark.parametrize("codec", [CODEC_STORED, CODEC_DEFLATE])
def test_compress_co512(benchmark, codec, bench_workdir):
    root = generate_dataset("co512", CACHE_DIR / "datasets", scale=DATASET_SCALE)
    manager = DatasetManager(FileStore(bench_workdir / f"abl-comp-b-{codec}"), codec=codec)
    benchmark.pedantic(lambda: manager.compress(root), rounds=3, iterations=1)
