"""Figure 12: baseline TTR breakdown per architecture (U_3-1-3).

The paper decomposes baseline recovery into *load*, *recover*, and
*check-hash* (the >1 s environment check is excluded from the figure) and
finds every step grows with the parameter count — except GoogLeNet, whose
*recover* step peaks because its initialization routine is ~7x slower than
ResNet-18's.
"""

import statistics

import pytest

from repro.distsim import SharedStores, make_service
from repro.nn.models import list_models

from conftest import FULL_RUN, Report, chain_config, fmt_ms, get_chain, save_chain_through

REPETITIONS = 5 if FULL_RUN else 3
STEPS = ("load", "recover", "check_hash")


def measure(workdir, architecture: str) -> dict[str, float]:
    chain = get_chain(chain_config(architecture))
    stores = SharedStores.at(workdir / f"fig12-{architecture}")
    service = make_service("baseline", stores)
    ids = save_chain_through(service, chain, "baseline")
    samples = {step: [] for step in STEPS}
    for _ in range(REPETITIONS):
        recovered = service.recover_model(ids["U_3-1-3"])
        for step in STEPS:
            samples[step].append(recovered.timings[step])
    return {step: statistics.median(values) for step, values in samples.items()}


def test_fig12_breakdown_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "fig12", "Baseline TTR breakdown per architecture, env check excluded (paper Fig. 12)"
    )
    breakdowns = {name: measure(bench_workdir, name) for name in list_models()}
    report.table(
        ["model", "load", "recover", "check hash", "total"],
        [
            [
                name,
                fmt_ms(b["load"]),
                fmt_ms(b["recover"]),
                fmt_ms(b["check_hash"]),
                fmt_ms(sum(b.values())),
            ]
            for name, b in breakdowns.items()
        ],
    )

    # shape checks: ResNet family ordered by size; GoogLeNet recover peak
    totals = {name: sum(b.values()) for name, b in breakdowns.items()}
    assert totals["resnet18"] < totals["resnet50"] < totals["resnet152"]
    assert totals["mobilenetv2"] < totals["resnet152"]
    ratio = breakdowns["googlenet"]["recover"] / breakdowns["resnet18"]["recover"]
    assert ratio > 1.2, (
        "GoogLeNet's recover step must peak vs ResNet-18 "
        f"(init-routine cost); measured ratio {ratio:.2f}"
    )
    report.line(
        f"GoogLeNet recover step is {ratio:.1f}x ResNet-18's despite having "
        "fewer parameters — the paper's initialization-routine anomaly."
    )
    report.write()
