"""Figure 9: MPA storage consumption across datasets and architectures.

The paper compares MobileNetV2 and ResNet-152 provenance chains trained on
CF-512 vs CO-512 and finds: per-use-case storage is nearly identical across
the two architectures (the dataset dominates, >99.9% of MPA storage), the
CF-512 runs cost ~23 MB more than CO-512 runs (the datasets' size gap), and
U_2 always peaks at the mINet_val size.
"""

import pytest

from repro.distsim import SharedStores, make_service

from conftest import DATASET_SCALE, Report, chain_config, fmt_mb, get_chain, save_chain_through


def measure(workdir, architecture: str, dataset: str) -> dict[str, int]:
    chain = get_chain(chain_config(architecture, u3_dataset=dataset))
    stores = SharedStores.at(workdir / f"fig9-{architecture}-{dataset}")
    service = make_service("provenance", stores)
    ids = save_chain_through(service, chain, "provenance")
    return {u: service.model_save_size(mid).total for u, mid in ids.items()}


def test_fig9_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("fig9", "MPA storage across datasets (paper Fig. 9)")
    panels = {}
    for architecture in ("mobilenetv2", "resnet152"):
        for dataset in ("cf512", "co512"):
            panels[(architecture, dataset)] = measure(bench_workdir, architecture, dataset)

    use_cases = list(panels[("mobilenetv2", "cf512")])
    for architecture in ("mobilenetv2", "resnet152"):
        report.line(f"{architecture} (MPA)")
        report.table(
            ["use case", "CF-512", "CO-512"],
            [
                [u, fmt_mb(panels[(architecture, "cf512")][u]), fmt_mb(panels[(architecture, "co512")][u])]
                for u in use_cases
            ],
        )

    # shape checks from Section 4.2
    derived_u3 = [u for u in use_cases if u.startswith("U_3")]
    mobile_cf = sum(panels[("mobilenetv2", "cf512")][u] for u in derived_u3)
    resnet_cf = sum(panels[("resnet152", "cf512")][u] for u in derived_u3)
    assert mobile_cf == pytest.approx(resnet_cf, rel=0.02), (
        "MPA storage must be (almost) independent of the architecture"
    )

    gap = (
        panels[("mobilenetv2", "cf512")]["U_3-1-1"]
        - panels[("mobilenetv2", "co512")]["U_3-1-1"]
    )
    expected_gap = (94_300_000 - 71_600_000) * DATASET_SCALE
    assert gap == pytest.approx(expected_gap, rel=0.35), (
        "the CF/CO storage gap must track the datasets' size difference"
    )
    for architecture in ("mobilenetv2", "resnet152"):
        panel = panels[(architecture, "cf512")]
        assert panel["U_2"] > panel["U_3-1-1"], "U_2 must peak (mINet_val is larger)"

    report.line(
        f"CF-512 vs CO-512 per-save gap: {fmt_mb(gap)} "
        f"(scaled dataset size difference: {fmt_mb(expected_gap)})"
    )
    report.write()
