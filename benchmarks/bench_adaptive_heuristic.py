"""Section 4.7: the adaptive approach selector over representative scenarios.

The paper sketches per-scenario recommendations (BA for TTR-priority, PUA
for big-dataset/partial-update regimes, MPA for NLP-shaped workloads or
externally managed datasets).  This bench evaluates the cost-model selector
on those scenarios and validates its picks against the measured behaviour
of the real services on a small chain.
"""

import pytest

from repro.core import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
    ScenarioProfile,
    recommend_approach,
    select_approach,
)
from repro.core.schema import APPROACHES
from repro.distsim import STANDARD, SharedStores, run_evaluation_flow

from conftest import Report, chain_config, get_chain

SCENARIOS = [
    (
        "vision, partial updates (BMS fleet)",
        ScenarioProfile(
            model_bytes=240_000_000,
            dataset_bytes=70_000_000,
            updated_fraction=0.034,
            train_seconds=600,
        ),
        APPROACH_PARAM_UPDATE,
    ),
    (
        "vision, full updates, big dataset",
        ScenarioProfile(
            model_bytes=14_000_000,
            dataset_bytes=6_300_000_000,
            updated_fraction=1.0,
            train_seconds=3600,
        ),
        APPROACH_BASELINE,
    ),
    (
        "NLP: huge model, small dataset, short fine-tune",
        ScenarioProfile(
            model_bytes=1_300_000_000,
            dataset_bytes=5_000_000,
            updated_fraction=1.0,
            train_seconds=120,
        ),
        APPROACH_PROVENANCE,
    ),
    (
        "externally managed dataset",
        ScenarioProfile(
            model_bytes=100_000_000,
            dataset_bytes=10_000_000_000,
            updated_fraction=0.5,
            train_seconds=1800,
            dataset_externally_managed=True,
        ),
        APPROACH_PROVENANCE,
    ),
]


def test_adaptive_heuristic_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("adaptive", "Adaptive approach selection (paper §4.7)")
    rows = []
    for label, profile, expected in SCENARIOS:
        simple = recommend_approach(profile)
        constrained = select_approach(profile, chain_depth=4)
        rows.append([label, simple, constrained.approach, expected])
        assert simple == expected, f"{label}: expected {expected}, got {simple}"
    report.table(["scenario", "ratio heuristic", "cost model", "paper §4.7"], rows)

    # TTR-priority always picks the baseline
    ttr_choice = select_approach(
        SCENARIOS[0][1],
        chain_depth=10,
        storage_weight=0.0,
        recover_weight=1.0,
    )
    assert ttr_choice.approach != APPROACH_PROVENANCE
    report.line(f"TTR-priority pick: {ttr_choice.approach} (paper: BA preferred)")
    report.line()

    # validate the partial-update recommendation against measured storage
    chain = get_chain(chain_config("mobilenetv2", "partially_updated"))
    measured = {}
    for approach in APPROACHES:
        stores = SharedStores.at(bench_workdir / f"adaptive-{approach}")
        metrics = run_evaluation_flow(
            approach, chain, STANDARD, stores, measure_recover=False
        )
        storage = metrics.storage()
        measured[approach] = sum(v for u, v in storage.items() if u.startswith("U_3"))
    best_measured = min(measured, key=measured.get)
    report.table(
        ["approach", "measured U_3 storage (bytes)"],
        [[a, f"{int(v):,}"] for a, v in measured.items()],
    )
    report.line(f"measured best for partial-update vision scenario: {best_measured}")
    assert best_measured == APPROACH_PARAM_UPDATE, (
        "the heuristic's partial-update recommendation must match measurement"
    )
    report.write()
