"""Section 2.4: probing the model zoo for reproducibility.

The paper ran its probing tool over popular computer-vision models and
found the majority reproducible (inference and training), with failures
traced to deprecated layers lacking deterministic implementations.  This
bench probes every registry architecture plus a deliberately broken variant
carrying a :class:`~repro.nn.LegacyDropout` layer.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import probe_reproducibility
from repro.nn.models import create_model, list_models

from conftest import MODEL_SCALE, NUM_CLASSES, Report


def probe_batch():
    nn.manual_seed(0)
    images = nn.randn(2, 3, 32, 32)
    labels = np.array([0, 1], dtype=np.int64)
    return images, labels


def legacy_variant():
    """A model using a deprecated layer with no deterministic kernel."""
    model = create_model("mobilenetv2", num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
    model.classifier._modules["0"] = nn.LegacyDropout(0.2)
    return model


def test_probe_report(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    report = Report("probe", "Model-zoo reproducibility probe (paper §2.4)")
    images, labels = probe_batch()
    rows = []
    outcomes = {}
    for name in list_models():
        model = create_model(name, num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
        result = probe_reproducibility(model, images, labels, training=True)
        outcomes[name] = result.reproducible
        rows.append([name, "yes" if result.reproducible else "NO", result.first_divergence or "-"])

    broken = legacy_variant()
    result = probe_reproducibility(broken, images, labels, training=True)
    outcomes["mobilenetv2+LegacyDropout"] = result.reproducible
    rows.append(
        [
            "mobilenetv2+LegacyDropout",
            "yes" if result.reproducible else "NO",
            result.first_divergence or "-",
        ]
    )
    report.table(["model", "reproducible", "first divergence"], rows)

    # paper finding: all deterministic-implementation models reproduce;
    # the deprecated-layer variant does not
    for name in list_models():
        assert outcomes[name], f"{name} must be reproducible under deterministic kernels"
    assert not outcomes["mobilenetv2+LegacyDropout"], (
        "the deprecated-layer variant must be flagged as non-reproducible"
    )
    report.line(
        "All standard architectures reproduce training bitwise under "
        "deterministic kernels; the deprecated-layer variant is flagged."
    )
    report.write()


@pytest.mark.parametrize("name", ["mobilenetv2", "resnet18"])
def test_probe_cost(benchmark, name):
    """Probe-tool runtime per architecture (two probed executions)."""
    images, labels = probe_batch()
    model = create_model(name, num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
    benchmark.pedantic(
        lambda: probe_reproducibility(model, images, labels, training=True),
        rounds=3,
        iterations=1,
    )
