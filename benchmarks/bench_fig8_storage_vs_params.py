"""Figure 8: baseline storage consumption and #parameters per model.

The paper shows BA storage growing proportionally with the parameter
count across the five architectures.
"""

import pytest

from repro.core import ModelSaveInfo
from repro.distsim import SharedStores, make_service
from repro.nn.models import MODEL_REGISTRY, create_model, list_models
from repro.core.save_info import ArchitectureRef

from conftest import MODEL_SCALE, NUM_CLASSES, Report, fmt_mb


def _save_one(workdir, name: str):
    stores = SharedStores.at(workdir / f"fig8-{name}")
    service = make_service("baseline", stores)
    model = create_model(name, num_classes=NUM_CLASSES, scale=MODEL_SCALE, seed=0)
    spec = MODEL_REGISTRY[name]
    arch = ArchitectureRef.from_factory(
        spec.factory.__module__,
        spec.factory.__name__,
        {"num_classes": NUM_CLASSES, "scale": MODEL_SCALE},
    )
    model_id = service.save_model(ModelSaveInfo(model, arch))
    return model.num_parameters(), service.model_save_size(model_id).total


def test_fig8_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "fig8", "BA storage consumption vs number of parameters (paper Fig. 8)"
    )
    rows = []
    measurements = []
    for name in list_models():
        params, storage = _save_one(bench_workdir, name)
        measurements.append((name, params, storage))
        rows.append([name, f"{params:,}", fmt_mb(storage), f"{storage / params:.2f}"])
    report.table(["model", "#params", "BA storage", "bytes/param"], rows)

    # shape check: storage ordered by and proportional to parameter count
    measurements.sort(key=lambda m: m[1])
    storages = [m[2] for m in measurements]
    assert storages == sorted(storages), "storage must grow with #params"
    bytes_per_param = [m[2] / m[1] for m in measurements]
    assert max(bytes_per_param) / min(bytes_per_param) < 1.5, (
        "storage must be roughly proportional to #params (4 bytes each + overhead)"
    )
    report.line(
        "Storage grows proportionally with the parameter count "
        "(~4 bytes/param + buffers and metadata), as in the paper."
    )
    report.write()
