"""Figure 10: median time-to-save (TTS) across approaches.

Panels: (a)/(c) fully updated and (b)/(d) partially updated MobileNetV2 /
ResNet-152 versions on CO-512.  Expected shapes (Section 4.3):

* BA TTS tracks the parameter count (hash + serialize + persist);
* PUA ~= BA for fully updated versions, clearly faster for partially
  updated versions (paper: up to -28.5% MobileNetV2, -51.7% ResNet-152);
* MPA can beat both when its storage is smaller (large model / small
  dataset) and loses badly in the opposite regime.
"""

import statistics
import time

import pytest

from repro.core.schema import APPROACHES
from repro.distsim import STANDARD, SharedStores, run_evaluation_flow

from conftest import FULL_RUN, Report, chain_config, fmt_ms, get_chain

REPETITIONS = 5 if FULL_RUN else 3
PANELS = [
    ("a", "mobilenetv2", "fully_updated"),
    ("b", "mobilenetv2", "partially_updated"),
    ("c", "resnet152", "fully_updated"),
    ("d", "resnet152", "partially_updated"),
]


def measure_panel(workdir, architecture: str, relation: str):
    chain = get_chain(chain_config(architecture, relation, u3_dataset="co512"))
    panel = {}
    for approach in APPROACHES:
        merged = None
        for repetition in range(REPETITIONS):
            stores = SharedStores.at(
                workdir / f"fig10-{architecture}-{relation}-{approach}-{repetition}"
            )
            metrics = run_evaluation_flow(
                approach,
                chain,
                STANDARD,
                stores,
                measure_recover=False,
                # image data is JPEG-like (incompressible): the stored codec
                # matches how a production MPA would archive it — see
                # bench_ablation_compression
                dataset_codec="stored",
            )
            merged = metrics if merged is None else merged.merge(metrics)
        panel[approach] = merged.median_tts()
    return panel


def test_fig10_tts_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("fig10", "Median time-to-save across approaches (paper Fig. 10)")
    for panel_id, architecture, relation in PANELS:
        panel = measure_panel(bench_workdir, architecture, relation)
        use_cases = [u for u in panel["baseline"] if u != "U_2"]
        report.line(f"({panel_id}) {relation} {architecture}, CO-512 (median of {REPETITIONS} runs)")
        report.table(
            ["use case"] + list(APPROACHES),
            [[u] + [fmt_ms(panel[a][u]) for a in APPROACHES] for u in use_cases],
        )

        derived = [u for u in use_cases if u != "U_1"]
        ba = statistics.median(panel["baseline"][u] for u in derived)
        pua = statistics.median(panel["param_update"][u] for u in derived)
        mpa = statistics.median(panel["provenance"][u] for u in derived)
        report.line(
            f"    derived-model medians: BA {fmt_ms(ba)}, "
            f"PUA {fmt_ms(pua)} ({(pua - ba) / ba:+.1%}), "
            f"MPA {fmt_ms(mpa)} ({(mpa - ba) / ba:+.1%})"
        )
        report.line()
        if relation == "partially_updated":
            assert pua < ba, "PUA must save partially updated versions faster than BA"
    report.write()
