"""Ablation: chain-sweep recovery with vs. without the prefix cache.

The paper's recursive recovery makes a U_4 sweep over a whole chain cost
O(n²) base recoveries (every model re-recovers its full prefix).  The
:class:`~repro.core.RecoveryCache` extension memoizes prefixes, reducing a
sweep to O(n).  This ablation times a full-chain sweep both ways for the
PUA and the MPA — where base recovery means replaying training, so the
cache saving is dramatic.
"""

import time

import pytest

from repro.core import RecoveryCache
from repro.distsim import SharedStores, make_service

from conftest import Report, chain_config, get_chain, save_chain_through


def sweep(service, ids, cache=None) -> float:
    started = time.perf_counter()
    for model_id in ids.values():
        recovered = service.recover_model(model_id, cache=cache)
        assert recovered.verified is not False
    return time.perf_counter() - started


def test_recovery_cache_ablation_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report(
        "ablation_recovery_cache",
        "Chain-sweep recovery: prefix cache vs recursive re-recovery",
    )
    chain = get_chain(chain_config("mobilenetv2", "fully_updated"))
    rows = []
    speedups = {}
    for approach in ("param_update", "provenance"):
        stores = SharedStores.at(bench_workdir / f"cache-abl-{approach}")
        service = make_service(approach, stores, dataset_codec="stored")
        ids = save_chain_through(service, chain, approach)

        uncached = sweep(service, ids, cache=None)
        cache = RecoveryCache()
        cached = sweep(service, ids, cache=cache)
        speedups[approach] = uncached / cached
        rows.append(
            [
                approach,
                f"{uncached * 1e3:.0f} ms",
                f"{cached * 1e3:.0f} ms",
                f"{uncached / cached:.1f}x",
                f"{cache.hits}/{cache.hits + cache.misses}",
            ]
        )
    report.table(
        ["approach", "sweep (no cache)", "sweep (cache)", "speedup", "cache hits"],
        rows,
    )
    assert speedups["provenance"] > 1.5, (
        "prefix caching must clearly accelerate MPA chain sweeps "
        f"(measured {speedups['provenance']:.2f}x)"
    )
    report.line(
        "With training replay as the per-level cost, memoized prefixes turn "
        "the O(n^2) sweep into O(n) — an optimization the paper's recursive "
        "recovery description directly motivates."
    )
    report.write()
