"""Figure 11: median time-to-recover (TTR) across approaches.

Panels: MobileNetV2 and ResNet-152, fully and partially updated, CO-512.
Expected shapes (Section 4.4):

* BA TTR constant across use cases (independent snapshots);
* PUA TTR staircases: +1 recovery level per U_3 iteration, resetting to
  base+1 at U_2; partial updates recover faster than full updates;
* MPA TTR staircases far above both (it replays training).
"""

import pytest

from repro.core.schema import APPROACHES
from repro.distsim import STANDARD, SharedStores, run_evaluation_flow

from conftest import Report, chain_config, fmt_ms, get_chain

PANELS = [
    ("a", "mobilenetv2", "fully_updated"),
    ("b", "resnet152", "fully_updated"),
    ("c", "mobilenetv2", "partially_updated"),
    ("d", "resnet152", "partially_updated"),
]


def measure_panel(workdir, architecture: str, relation: str):
    chain = get_chain(chain_config(architecture, relation, u3_dataset="co512"))
    panel = {}
    depths = {}
    for approach in APPROACHES:
        stores = SharedStores.at(workdir / f"fig11-{architecture}-{relation}-{approach}")
        metrics = run_evaluation_flow(approach, chain, STANDARD, stores)
        panel[approach] = metrics.median_ttr()
        depths[approach] = {r.use_case: r.recovery_depth for r in metrics.records}
    return panel, depths


def test_fig11_ttr_report(benchmark, bench_workdir):
    benchmark.pedantic(lambda: _report(bench_workdir), rounds=1, iterations=1)


def _report(bench_workdir):
    report = Report("fig11", "Median time-to-recover across approaches (paper Fig. 11)")
    for panel_id, architecture, relation in PANELS:
        panel, depths = measure_panel(bench_workdir, architecture, relation)
        use_cases = [u for u in panel["baseline"] if u != "U_2"]
        report.line(f"({panel_id}) {relation} {architecture}, CO-512")
        report.table(
            ["use case", "depth"] + list(APPROACHES),
            [
                [u, depths["param_update"][u]]
                + [fmt_ms(panel[a][u]) for a in APPROACHES]
                for u in use_cases
            ],
        )
        report.line()

        # BA constant
        ba_values = [panel["baseline"][u] for u in use_cases]
        assert max(ba_values) < 3 * min(ba_values), "BA TTR must stay ~constant"
        # staircase: each U_3 branch is monotone in depth for PUA and MPA
        for approach in ("param_update", "provenance"):
            branch1 = [panel[approach][f"U_3-1-{n}"] for n in range(1, 5)]
            assert branch1[-1] > branch1[0], f"{approach} TTR must grow along U_3-1"
        # MPA dominates
        assert panel["provenance"]["U_3-2-4"] > panel["param_update"]["U_3-2-4"]
        assert panel["provenance"]["U_3-2-4"] > panel["baseline"]["U_3-2-4"]
    report.write()
