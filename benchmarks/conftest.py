"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes a
plain-text report to ``benchmarks/results/``.  Reports hold the same rows /
series the paper shows; EXPERIMENTS.md records the paper-vs-measured
comparison.

Scaling knobs (environment variables):

``MMLIB_BENCH_SCALE``
    Model width scale (default 0.25).  ``1.0`` gives the paper's exact
    architectures (Table 2 always uses 1.0 regardless).
``MMLIB_BENCH_DATASET_SCALE``
    Fraction of the paper's dataset bytes (default 1/64).
``MMLIB_BENCH_FULL``
    Set to ``1`` to run the heavy variants (DIST-10/20 flows).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import ModelSaveInfo
from repro.core.schema import APPROACH_PROVENANCE
from repro.workloads import ChainConfig, build_chain

BENCH_DIR = Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
CACHE_DIR = BENCH_DIR / ".cache"

MODEL_SCALE = float(os.environ.get("MMLIB_BENCH_SCALE", "0.25"))
# Model parameter bytes shrink roughly with MODEL_SCALE^2; matching the
# dataset scale to that factor keeps the paper's dataset-bytes /
# model-bytes ratios — and therefore the MPA-vs-BA crossovers — in place.
DATASET_SCALE = float(
    os.environ.get("MMLIB_BENCH_DATASET_SCALE", str(max(MODEL_SCALE**2, 1 / 256)))
)
FULL_RUN = os.environ.get("MMLIB_BENCH_FULL", "0") == "1"

#: Evaluation classifier width (paper: 1000 ImageNet classes).  Scaled-down
#: benches use fewer classes to keep the classifier in proportion.
NUM_CLASSES = 1000 if MODEL_SCALE >= 1.0 else 100


def chain_config(
    architecture: str,
    relation: str = "fully_updated",
    u3_dataset: str = "co512",
    iterations: int = 4,
    batches_per_epoch: int = 2,
) -> ChainConfig:
    """Benchmark-scaled chain configuration for one experiment."""
    return ChainConfig(
        architecture=architecture,
        relation=relation,
        u3_dataset=u3_dataset,
        iterations=iterations,
        u2_epochs=1,
        u3_epochs=1,
        batches_per_epoch=batches_per_epoch,
        scale=MODEL_SCALE,
        num_classes=NUM_CLASSES,
        dataset_scale=DATASET_SCALE,
        image_size=32,
    )


def get_chain(config: ChainConfig):
    """Build (or reuse from the bench cache) a pre-trained model chain."""
    return build_chain(CACHE_DIR, config)


def save_chain_through(service, chain, approach: str) -> dict[str, str]:
    """Save every chain snapshot through a service; use case -> model id."""
    arch = chain.config.architecture_ref()
    ids: dict[str, str] = {}
    for step in chain.steps:
        base_id = (
            ids[chain.steps[step.base_index].use_case]
            if step.base_index is not None
            else None
        )
        model = chain.build_model(step.use_case)
        if approach == APPROACH_PROVENANCE and step.run is not None:
            info = step.run.to_provenance_info(
                base_id, trained_model=model, use_case=step.use_case
            )
        else:
            info = ModelSaveInfo(
                model=model, architecture=arch, base_model_id=base_id, use_case=step.use_case
            )
        ids[step.use_case] = service.save_model(info)
    return ids


class Report:
    """Accumulates one experiment's output and writes it to results/."""

    def __init__(self, experiment: str, title: str):
        self.experiment = experiment
        self.lines = [f"# {experiment}: {title}", ""]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
            for i in range(len(headers))
        ]
        self.line("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        self.line("  ".join("-" * w for w in widths))
        for row in rows:
            self.line("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        self.line()

    def write(self) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        content = "\n".join(self.lines) + "\n"
        path.write_text(content)
        print(f"\n{content}")
        return path


@pytest.fixture(scope="session")
def bench_workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("bench-stores")


def fmt_mb(num_bytes: float) -> str:
    return f"{num_bytes / 1e6:.2f} MB"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f} ms"
