"""Ablation: deterministic accumulation chunk size (design choice).

The deterministic kernels accumulate in fixed-order chunks; the chunk size
trades reproduction granularity against speed.  This sweep shows why the
substrate defaults to 256: large chunks approach fused-matmul speed while
remaining bitwise reproducible, and the "legacy" fallback's effective tiny
chunks are what make deterministic ResNet-18 training slow (Fig. 13).
"""

import time

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import rng

from conftest import Report

SHAPE = (2048, 2048, 256)  # M, K, N — a grad_w-like reduction
CHUNKS = (16, 64, 256, 1024, 2048)


def _operands():
    a = np.random.default_rng(0).normal(size=SHAPE[:2]).astype(np.float32)
    b = np.random.default_rng(1).normal(size=SHAPE[1:]).astype(np.float32)
    return a, b


def _timed(fn, reps: int = 5) -> float:
    fn()  # warmup
    started = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - started) / reps


def test_det_chunk_ablation_report(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    report = Report(
        "ablation_det_chunk", "Deterministic accumulation chunk size (design choice)"
    )
    a, b = _operands()
    with rng.deterministic_mode(False):
        nondet = _timed(lambda: F.reduced_matmul(a, b))
    rows = [["non-deterministic (fused)", f"{nondet * 1e3:.2f} ms", "1.00x"]]
    times = {}
    reference = None
    with rng.deterministic_mode(True):
        for chunk in CHUNKS:
            rng.set_deterministic_chunk_size(chunk)
            try:
                times[chunk] = _timed(lambda: F.reduced_matmul(a, b))
                out = F.reduced_matmul(a, b)
                if reference is None:
                    reference = out
                else:
                    assert np.allclose(out, reference, atol=1e-2), (
                        "all chunk sizes must compute the same product"
                    )
            finally:
                rng.set_deterministic_chunk_size(rng.DEFAULT_DETERMINISTIC_CHUNK)
            rows.append(
                [f"deterministic, chunk={chunk}", f"{times[chunk] * 1e3:.2f} ms",
                 f"{times[chunk] / nondet:.2f}x"]
            )
    report.table(["configuration", "time", "vs non-det"], rows)

    assert times[16] > times[1024], "small chunks must cost more than large ones"
    overhead = times[rng.DEFAULT_DETERMINISTIC_CHUNK] / nondet
    report.line(
        f"default chunk ({rng.DEFAULT_DETERMINISTIC_CHUNK}) overhead vs fused: "
        f"{overhead:.2f}x — deterministic standard kernels stay cheap, "
        "matching the paper's ResNet-50/152 observation."
    )
    report.write()


@pytest.mark.parametrize("chunk", [16, 256, 2048])
def test_chunked_matmul(benchmark, chunk):
    a, b = _operands()
    with rng.deterministic_mode(True):
        rng.set_deterministic_chunk_size(chunk)
        try:
            benchmark.pedantic(lambda: F.reduced_matmul(a, b), rounds=3, iterations=1)
        finally:
            rng.set_deterministic_chunk_size(rng.DEFAULT_DETERMINISTIC_CHUNK)
