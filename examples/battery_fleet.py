"""Battery-management-system fleet: the paper's motivating example (§1).

An automotive fleet runs one battery-health model per vehicle.  Vehicles
regularly fine-tune their model on locally collected measurements (use case
U_3); the manufacturer occasionally ships an improved base model (U_2) and
must be able to recover the *exact* model any vehicle ever ran — for safety
audits and failure forensics (U_4).

This example simulates a 12-vehicle fleet over two update rounds using the
parameter update approach (the paper's recommendation for this scenario:
per-vehicle updates touch only the last layers, so updates are tiny) and a
cellular-uplink network model for the vehicles' storage link.

Run with::

    python examples/battery_fleet.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import ArchitectureRef, ModelSaveInfo, ParameterUpdateSaveService
from repro.docstore import DocumentStore
from repro.filestore import CELLULAR_LTE, SimulatedNetworkFileStore
from repro.nn.models import create_model, freeze_for_partial_update
from repro.nn import manual_seed, rng
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor

FLEET_SIZE = 12
ROUNDS = 2


def local_finetune(model, vehicle: int, round_index: int) -> None:
    """One vehicle's on-board adaptation from battery telemetry.

    Stands in for training on locally collected measurements: only the
    final layer adapts (partially updated model version), driven by a
    vehicle-specific seeded data stream.
    """
    freeze_for_partial_update(model)
    head = model.final_classifier()
    optimizer = SGD([head.weight, head.bias], lr=0.05)
    generator = np.random.default_rng(1000 * round_index + vehicle)
    for _ in range(3):
        telemetry = Tensor(generator.normal(size=(8, head.in_features)).astype(np.float32))
        target = Tensor(generator.normal(size=(8, head.out_features)).astype(np.float32))
        optimizer.zero_grad()
        prediction = telemetry @ head.weight.transpose(0, 1) + head.bias
        loss = ((prediction - target) ** 2).mean()
        loss.backward()
        optimizer.step()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mmlib-fleet-"))
    documents = DocumentStore(workdir / "documents")
    # vehicles reach central storage over a cellular uplink
    files = SimulatedNetworkFileStore(workdir / "files", CELLULAR_LTE, sleep=False)
    service = ParameterUpdateSaveService(documents, files)

    # the battery model: a compact CNN head over sensor spectrograms
    manual_seed(7)
    rng.use_deterministic_algorithms(True)
    base_model = create_model("mobilenetv2", num_classes=16, scale=0.25, seed=7)
    architecture = ArchitectureRef.from_factory(
        "repro.nn.models", "mobilenetv2", {"num_classes": 16, "scale": 0.25}
    )

    # U_1: the manufacturer distributes the laboratory-calibrated model
    base_id = service.save_model(ModelSaveInfo(base_model, architecture, use_case="U_1"))
    base_size = service.model_save_size(base_id).total
    print(f"U_1: distributed base model ({base_size / 1e6:.2f} MB snapshot)")

    vehicle_model_ids = {v: base_id for v in range(FLEET_SIZE)}
    vehicle_states = {v: base_model.state_dict() for v in range(FLEET_SIZE)}

    total_update_bytes = 0
    for round_index in range(1, ROUNDS + 1):
        for vehicle in range(FLEET_SIZE):
            model = create_model("mobilenetv2", num_classes=16, scale=0.25, seed=7)
            model.load_state_dict(vehicle_states[vehicle])
            local_finetune(model, vehicle, round_index)
            model_id = service.save_model(
                ModelSaveInfo(
                    model,
                    architecture,
                    base_model_id=vehicle_model_ids[vehicle],
                    use_case=f"U_3-{round_index}-v{vehicle}",
                )
            )
            vehicle_model_ids[vehicle] = model_id
            vehicle_states[vehicle] = model.state_dict()
            total_update_bytes += service.model_save_size(model_id).file_bytes
        print(
            f"U_3 round {round_index}: {FLEET_SIZE} vehicles registered updates "
            f"({service.last_diff.comparisons} hash comparisons per save, "
            f"{len(service.last_diff.changed_layers)} changed layers)"
        )

    snapshot_bytes = base_size * FLEET_SIZE * ROUNDS
    print(
        f"\nfleet storage for {FLEET_SIZE * ROUNDS} model versions: "
        f"{total_update_bytes / 1e6:.2f} MB as updates vs "
        f"{snapshot_bytes / 1e6:.2f} MB as full snapshots "
        f"({1 - total_update_bytes / snapshot_bytes:.1%} saved)"
    )
    print(
        f"simulated cellular transfer time spent: {files.simulated_seconds:.1f} s "
        f"({files.bytes_sent / 1e6:.1f} MB uplinked)"
    )

    # U_4: a safety audit needs vehicle 3's exact model from round 2
    audited = service.recover_model(vehicle_model_ids[3], verify=True)
    expected = vehicle_states[3]
    got = audited.model.state_dict()
    exact = all(np.array_equal(expected[k], got[k]) for k in expected)
    print(
        f"\nU_4 audit: recovered vehicle 3's model "
        f"(depth {audited.recovery_depth} chain) — checksum ok={audited.verified}, "
        f"bitwise exact={exact}"
    )
    assert exact and audited.verified


if __name__ == "__main__":
    main()
