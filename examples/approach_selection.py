"""Choosing a save approach per workload (paper §4.7).

Three teams share one model-management deployment:

* a *vision* team fine-tuning the last layer of big CNNs on large image
  dumps (partial updates, dataset >> update);
* an *NLP* team fully fine-tuning a large model on small text corpora for a
  few minutes at a time (model >> dataset);
* a *streaming* team whose datasets already live in a managed data lake
  (nothing to archive).

The example profiles each scenario, lets the cost-model selector pick an
approach under a storage budget and a recovery deadline, and prints the
paper's storage-retraining tradeoff for each.

Run with::

    python examples/approach_selection.py
"""

from __future__ import annotations

from repro.core import CostModel, ScenarioProfile, recommend_approach, select_approach

SCENARIOS = {
    "vision / partial fine-tune": ScenarioProfile(
        model_bytes=240_000_000,  # ResNet-152-class model
        dataset_bytes=95_000_000,  # CF-512-class image dump
        updated_fraction=0.034,  # only the classifier changes
        train_seconds=1800,
        recovers_per_save=0.01,
    ),
    "NLP / full fine-tune": ScenarioProfile(
        model_bytes=1_300_000_000,  # large language model
        dataset_bytes=4_000_000,  # small instruction corpus
        updated_fraction=1.0,
        train_seconds=300,
        recovers_per_save=0.01,
    ),
    "streaming / managed data lake": ScenarioProfile(
        model_bytes=50_000_000,
        dataset_bytes=20_000_000_000,
        updated_fraction=0.8,
        train_seconds=2400,
        dataset_externally_managed=True,
        recovers_per_save=0.05,
    ),
}


def main() -> None:
    cost_model = CostModel()
    for label, profile in SCENARIOS.items():
        print(f"== {label}")
        print(
            f"   model {profile.model_bytes / 1e6:.0f} MB, "
            f"dataset {profile.dataset_bytes / 1e6:.0f} MB"
            f"{' (externally managed)' if profile.dataset_externally_managed else ''}, "
            f"{profile.updated_fraction:.0%} of parameters change per update"
        )

        for estimate in cost_model.estimate(profile, chain_depth=5):
            print(
                f"   {estimate.approach:<13} storage {estimate.storage_bytes / 1e6:8.1f} MB   "
                f"TTS {estimate.save_seconds:6.2f} s   TTR {estimate.recover_seconds:8.1f} s"
            )

        simple = recommend_approach(profile)
        print(f"   ratio heuristic picks: {simple}")

        # constrained selection: storage budget and a recovery deadline
        budget = select_approach(
            profile,
            chain_depth=5,
            max_storage_bytes=0.2 * profile.model_bytes,
            max_recover_seconds=None,
        )
        print(f"   under a 20%-of-model storage budget: {budget.approach}")
        try:
            strict = select_approach(
                profile,
                chain_depth=5,
                max_storage_bytes=0.2 * profile.model_bytes,
                max_recover_seconds=30.0,
            )
            print(f"   …and a 30 s recovery deadline:      {strict.approach}")
        except ValueError:
            print(
                "   …and a 30 s recovery deadline:      infeasible — the "
                "storage-retraining tradeoff has no free lunch; relax one bound"
            )
        print()


if __name__ == "__main__":
    main()
