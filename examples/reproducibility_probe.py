"""Verifying model reproducibility with the probing tool (paper §2.4).

Before trusting the model provenance approach in production, an operator
must know whether their models train reproducibly on their stack.  This
example runs the probing tool the way the paper does:

1. probe a model twice on one machine and compare layer-wise;
2. save the probe summary to a JSON file, as you would before shipping it
   to a second machine for cross-machine verification;
3. demonstrate a *failing* probe on a model using a deprecated layer with
   no deterministic implementation, and show how the report pinpoints the
   first diverging layer.

Run with::

    python examples/reproducibility_probe.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro.nn as nn
from repro.core import ProbeSummary, probe_reproducibility, probe_training
from repro.nn import rng
from repro.nn.models import create_model


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mmlib-probe-"))
    nn.manual_seed(0)
    images = nn.randn(2, 3, 32, 32)
    labels = np.array([1, 3], dtype=np.int64)

    # -- 1. two-run probe on one machine --------------------------------------
    model = create_model("resnet18", num_classes=10, scale=0.25, seed=0)
    result = probe_reproducibility(model, images, labels, training=True)
    print(f"resnet18 training reproducible: {result.reproducible} "
          f"({result.record_count} layer records compared)")

    # -- 2. cross-machine workflow: persist the summary -----------------------------
    with rng.deterministic_mode(True):
        with rng.fork_rng(seed=0):
            summary = probe_training(model, images, labels)
    summary_path = workdir / "resnet18-probe.json"
    summary.save(summary_path)
    print(f"probe summary saved to {summary_path} "
          f"({summary_path.stat().st_size} bytes — ship this to machine B)")

    # machine B would load the file and probe its own execution:
    loaded = ProbeSummary.load(summary_path)
    with rng.deterministic_mode(True):
        with rng.fork_rng(seed=0):
            second_machine = probe_training(model, images, labels)
    cross = loaded.compare(second_machine)
    print(f"cross-'machine' comparison reproducible: {cross.reproducible}")

    # -- 3. a model with a deprecated layer fails the probe ---------------------------
    broken = create_model("mobilenetv2", num_classes=10, scale=0.25, seed=0)
    # swap the classifier dropout for the deprecated variant that has no
    # deterministic implementation
    broken.classifier._modules["0"] = nn.LegacyDropout(0.2)
    result = probe_reproducibility(broken, images, labels, training=True)
    print(f"\nmobilenetv2 with LegacyDropout reproducible: {result.reproducible}")
    print(f"first diverging record: {result.first_divergence}")
    print(f"diverging records: {len(result.mismatches)} of {result.record_count}")
    print(
        "\nConclusion (as in the paper): models are reproducible when every "
        "layer has a deterministic implementation; deprecated layers break "
        "reproducibility and the probe pinpoints them."
    )


if __name__ == "__main__":
    main()
