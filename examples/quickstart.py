"""Quickstart: save and recover an exact model with all three approaches.

Walks the core MMlib workflow end to end:

1. create a model and save a full snapshot (baseline approach);
2. derive a partially updated version and save only the parameter update;
3. derive another version by recorded training and save its provenance;
4. recover each model losslessly and verify checksums.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    ArchitectureRef,
    BaselineSaveService,
    ModelSaveInfo,
    ParameterUpdateSaveService,
    ProvenanceSaveService,
)
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from repro.nn.models import create_model, freeze_for_partial_update
from repro.workloads import generate_dataset
from repro.workloads.relations import PARTIALLY_UPDATED, TrainingRun


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mmlib-quickstart-"))
    print(f"working under {workdir}\n")

    # MMlib persists metadata as documents and payloads as files; both
    # stores would be shared infrastructure in a real deployment.
    documents = DocumentStore(workdir / "documents")
    files = FileStore(workdir / "files")

    # -- 1. baseline: save a complete snapshot --------------------------------
    model = create_model("mobilenetv2", num_classes=10, scale=0.25, seed=42)
    architecture = ArchitectureRef.from_factory(
        "repro.nn.models", "mobilenetv2", {"num_classes": 10, "scale": 0.25}
    )
    baseline = BaselineSaveService(documents, files)
    base_id = baseline.save_model(ModelSaveInfo(model, architecture, use_case="U_1"))
    size = baseline.model_save_size(base_id)
    print(f"[baseline]   saved initial model {base_id[:18]}…  ({size.total / 1e6:.2f} MB)")

    # -- 2. parameter update: save only what changed -----------------------------
    derived = create_model("mobilenetv2", num_classes=10, scale=0.25, seed=42)
    derived.load_state_dict(model.state_dict())
    freeze_for_partial_update(derived)
    classifier = derived.final_classifier()
    classifier.weight.data += 0.01  # stand-in for a quick fine-tune
    classifier.bias.data += 0.01

    pua = ParameterUpdateSaveService(documents, files)
    # (the PUA needs the base's per-layer hashes; re-save the base through it)
    pua_base_id = pua.save_model(ModelSaveInfo(model, architecture, use_case="U_1"))
    update_id = pua.save_model(
        ModelSaveInfo(derived, architecture, base_model_id=pua_base_id, use_case="U_3-1-1")
    )
    size = pua.model_save_size(update_id)
    print(
        f"[param-upd]  saved derived model as an update of "
        f"{len(pua.last_diff.changed_layers)} changed layers ({size.total / 1e6:.2f} MB, "
        f"{pua.last_diff.comparisons} hash comparisons)"
    )

    # -- 3. provenance: save the training recipe instead of the weights -----------
    dataset_dir = generate_dataset("co512", workdir / "datasets", scale=1 / 512)
    mpa = ProvenanceSaveService(documents, files, scratch_dir=workdir / "scratch")
    mpa_base_id = mpa.save_model(ModelSaveInfo(model, architecture, use_case="U_1"))

    trained = create_model("mobilenetv2", num_classes=10, scale=0.25, seed=42)
    trained.load_state_dict(model.state_dict())
    run = TrainingRun(
        dataset_dir=dataset_dir,
        relation=PARTIALLY_UPDATED,
        number_epochs=1,
        number_batches=2,
        seed=7,
        num_classes=10,
    )
    run.execute(trained)  # the node-side training, fully recorded
    provenance_id = mpa.save_model(
        run.to_provenance_info(mpa_base_id, trained_model=trained, use_case="U_3-1-1")
    )
    size = mpa.model_save_size(provenance_id)
    print(f"[provenance] saved training recipe + dataset archive ({size.total / 1e6:.2f} MB)")

    # -- 4. recover everything exactly ----------------------------------------------
    print()
    for label, service, model_id, expected in (
        ("baseline", baseline, base_id, model),
        ("param-upd", pua, update_id, derived),
        ("provenance", mpa, provenance_id, trained),
    ):
        recovered = service.recover_model(model_id, verify=True)
        expected_state = expected.state_dict()
        got_state = recovered.model.state_dict()
        exact = all(np.array_equal(expected_state[k], got_state[k]) for k in expected_state)
        print(
            f"[{label:<10}] recovered in {recovered.total_seconds * 1e3:6.1f} ms "
            f"(depth {recovered.recovery_depth}), checksum verified={recovered.verified}, "
            f"bitwise exact={exact}"
        )
        assert exact and recovered.verified


if __name__ == "__main__":
    main()
