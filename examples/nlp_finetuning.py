"""NLP fine-tuning with the model provenance approach (paper §4.7).

A text-classification service fine-tunes a large embedding-dominated model
on small instruction corpora several times a day.  This is the paper's
"perfect domain for the MPA": short training times, small datasets, large
models.  The example:

1. trains and registers three fine-tuned versions through the *adaptive*
   service, which routes each save to the cheapest approach on its own;
2. shows the storage ledger (recipes instead of weights);
3. recovers the latest model by replaying its training and verifies it is
   bitwise identical to what the trainer produced.

Run with::

    python examples/nlp_finetuning.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

import repro.nn as nn
from repro.core import AdaptiveSaveService, ArchitectureRef, ModelManager, ModelSaveInfo
from repro.docstore import DocumentStore
from repro.filestore import FileStore
from repro.nn.models import text_classifier
from repro.workloads import generate_text_corpus
from repro.workloads.relations import TrainingRun

MODEL_KWARGS = {
    "vocab_size": 30_000,
    "embedding_dim": 64,
    "hidden_dim": 64,
    "num_classes": 4,
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mmlib-nlp-"))
    service = AdaptiveSaveService(
        DocumentStore(workdir / "documents"),
        FileStore(workdir / "files"),
        scratch_dir=workdir / "scratch",
        dataset_codec="stored",  # token shards are already dense
        train_seconds_estimate=5.0,
    )
    manager = ModelManager(service)

    nn.manual_seed(0)
    base = text_classifier(**MODEL_KWARGS)
    model_bytes = sum(v.nbytes for v in base.state_dict().values())
    print(f"model: {model_bytes / 1e6:.1f} MB of parameters "
          f"({base.embedding.num_parameters() / base.num_parameters():.0%} in the embedding table)")

    architecture = ArchitectureRef.from_factory(
        "repro.nn.models", "text_classifier", MODEL_KWARGS
    )
    base_id = service.save_model(ModelSaveInfo(base, architecture, use_case="U_1"))
    print(f"registered base model via {service.last_choice.approach}\n")

    previous_id = base_id
    state = base.state_dict()
    latest_model = None
    for round_index in range(1, 4):
        corpus = generate_text_corpus(
            workdir / "corpora",
            num_documents=400,
            sequence_length=24,
            vocab_size=MODEL_KWARGS["vocab_size"],
            seed=round_index,
        )
        corpus_bytes = sum(p.stat().st_size for p in corpus.rglob("*") if p.is_file())

        model = text_classifier(**MODEL_KWARGS)
        model.load_state_dict(state)
        run = TrainingRun(
            dataset_dir=corpus,
            number_epochs=1,
            number_batches=4,
            seed=1000 + round_index,
            batch_size=32,
            dataset_class="repro.workloads.text_data.SyntheticTextCorpus",
            dataset_kwargs={"vocab_size": MODEL_KWARGS["vocab_size"]},
        )
        run.execute(model)
        state = model.state_dict()
        latest_model = model

        started = time.perf_counter()
        previous_id = service.save_model(
            run.to_provenance_info(previous_id, trained_model=model,
                                   use_case=f"finetune-{round_index}")
        )
        tts = time.perf_counter() - started
        size = service.model_save_size(previous_id)
        print(
            f"round {round_index}: corpus {corpus_bytes / 1e3:.0f} KB -> saved via "
            f"{service.last_choice.approach} in {tts * 1e3:.0f} ms "
            f"({size.total / 1e6:.2f} MB stored vs {model_bytes / 1e6:.1f} MB snapshot)"
        )

    total = manager.total_storage_bytes()
    snapshots = model_bytes * 4
    print(
        f"\ncatalog: {len(manager.list_models())} models in {total / 1e6:.1f} MB "
        f"(full snapshots would need {snapshots / 1e6:.1f} MB — "
        f"{1 - total / snapshots:.0%} saved)"
    )
    print("\nlineage:")
    print(manager.lineage_tree(base_id))

    started = time.perf_counter()
    recovered = manager.recover(previous_id)
    ttr = time.perf_counter() - started
    expected = latest_model.state_dict()
    got = recovered.model.state_dict()
    exact = all(np.array_equal(expected[k], got[k]) for k in expected)
    print(
        f"\nrecovered latest model by replaying {recovered.recovery_depth} training "
        f"run(s) in {ttr * 1e3:.0f} ms — verified={recovered.verified}, bitwise exact={exact}"
    )
    assert exact and recovered.verified


if __name__ == "__main__":
    main()
